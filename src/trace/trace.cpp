#include "trace/trace.hpp"

#include <numeric>
#include <stdexcept>

#include "util/csv.hpp"

namespace pulse::trace {

Trace::Trace(std::size_t function_count, Minute duration_minutes)
    : duration_(duration_minutes) {
  if (duration_minutes < 0) throw std::invalid_argument("Trace: negative duration");
  counts_.assign(function_count, std::vector<std::uint32_t>(static_cast<std::size_t>(duration_minutes), 0));
  names_.reserve(function_count);
  for (std::size_t f = 0; f < function_count; ++f) names_.push_back("fn" + std::to_string(f));
}

Trace Trace::from_columns(std::vector<std::string> names,
                          std::vector<std::vector<std::uint32_t>> counts,
                          Minute duration_minutes) {
  if (duration_minutes < 0) throw std::invalid_argument("Trace: negative duration");
  if (names.size() != counts.size()) {
    throw std::invalid_argument("Trace::from_columns: names/counts size mismatch");
  }
  const auto duration = static_cast<std::size_t>(duration_minutes);
  for (auto& series : counts) {
    if (series.size() > duration) {
      throw std::invalid_argument("Trace::from_columns: series longer than duration");
    }
    series.resize(duration, 0);
  }
  Trace out;
  out.duration_ = duration_minutes;
  out.names_ = std::move(names);
  out.counts_ = std::move(counts);
  return out;
}

std::uint32_t Trace::count(FunctionId f, Minute t) const {
  if (t < 0 || t >= duration_) return 0;
  return counts_.at(f)[static_cast<std::size_t>(t)];
}

void Trace::set_count(FunctionId f, Minute t, std::uint32_t value) {
  if (t < 0 || t >= duration_) throw std::out_of_range("Trace::set_count: minute out of range");
  counts_.at(f)[static_cast<std::size_t>(t)] = value;
}

void Trace::add_invocations(FunctionId f, Minute t, std::uint32_t value) {
  if (t < 0 || t >= duration_) throw std::out_of_range("Trace::add_invocations: minute out of range");
  counts_.at(f)[static_cast<std::size_t>(t)] += value;
}

std::uint64_t Trace::total_invocations(FunctionId f) const {
  const auto& s = counts_.at(f);
  return std::accumulate(s.begin(), s.end(), std::uint64_t{0});
}

std::uint64_t Trace::total_invocations() const {
  std::uint64_t total = 0;
  for (std::size_t f = 0; f < counts_.size(); ++f) total += total_invocations(f);
  return total;
}

std::uint64_t Trace::invocations_at(Minute t) const {
  if (t < 0 || t >= duration_) return 0;
  std::uint64_t total = 0;
  for (const auto& s : counts_) total += s[static_cast<std::size_t>(t)];
  return total;
}

std::vector<std::uint64_t> Trace::aggregate_series() const {
  std::vector<std::uint64_t> agg(static_cast<std::size_t>(duration_), 0);
  for (const auto& s : counts_) {
    for (std::size_t t = 0; t < s.size(); ++t) agg[t] += s[t];
  }
  return agg;
}

std::vector<Minute> Trace::invocation_minutes(FunctionId f) const {
  std::vector<Minute> out;
  const auto& s = counts_.at(f);
  for (std::size_t t = 0; t < s.size(); ++t) {
    if (s[t] > 0) out.push_back(static_cast<Minute>(t));
  }
  return out;
}

Trace Trace::select_functions(std::span<const FunctionId> functions) const {
  Trace out(functions.size(), duration_);
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionId f = functions[i];
    if (f >= counts_.size()) {
      throw std::out_of_range("Trace::select_functions: function id out of range");
    }
    out.names_[i] = names_[f];
    out.counts_[i] = counts_[f];
  }
  return out;
}

Trace Trace::slice(Minute begin, Minute end) const {
  if (begin < 0 || end > duration_ || begin > end) {
    throw std::out_of_range("Trace::slice: invalid range");
  }
  Trace out(counts_.size(), end - begin);
  for (std::size_t f = 0; f < counts_.size(); ++f) {
    out.names_[f] = names_[f];
    for (Minute t = begin; t < end; ++t) {
      out.counts_[f][static_cast<std::size_t>(t - begin)] =
          counts_[f][static_cast<std::size_t>(t)];
    }
  }
  return out;
}

void Trace::save_csv(const std::filesystem::path& path) const {
  util::CsvRow header{"function", "name"};
  for (Minute t = 0; t < duration_; ++t) {
    std::string column = "m";
    column += std::to_string(t);
    header.push_back(std::move(column));
  }
  util::CsvTable table(std::move(header));
  for (std::size_t f = 0; f < counts_.size(); ++f) {
    util::CsvRow row{std::to_string(f), names_[f]};
    row.reserve(2 + counts_[f].size());
    for (std::uint32_t c : counts_[f]) row.push_back(std::to_string(c));
    table.add_row(std::move(row));
  }
  table.write_file(path);
}

Trace Trace::load_csv(const std::filesystem::path& path) {
  auto result = try_load_csv(path);
  if (!result) throw std::runtime_error(result.error().to_string());
  return std::move(result.value());
}

TraceResult<Trace> Trace::try_load_csv(const std::filesystem::path& path) {
  util::CsvTable table;
  try {
    table = util::CsvTable::read_file(path);
  } catch (const std::exception& e) {
    return TraceError{TraceErrorKind::kIo, path.string(), 0, e.what()};
  }
  if (table.header().size() < 2) {
    return TraceError{TraceErrorKind::kBadHeader, path.string(), 1,
                      "expected at least 'function,name' columns, got " +
                          std::to_string(table.header().size())};
  }
  const Minute duration = static_cast<Minute>(table.header().size()) - 2;
  Trace out(table.row_count(), duration);
  for (std::size_t f = 0; f < table.rows().size(); ++f) {
    const auto& row = table.rows()[f];
    const std::size_t line_no = f + 2;  // 1-based, after the header
    if (row.size() != table.header().size()) {
      return TraceError{TraceErrorKind::kMalformedRow, path.string(), line_no,
                        "expected " + std::to_string(table.header().size()) +
                            " columns, got " + std::to_string(row.size())};
    }
    out.names_[f] = row[1];
    for (Minute t = 0; t < duration; ++t) {
      const std::string& cell = row[static_cast<std::size_t>(t) + 2];
      const auto count = parse_invocation_count(cell);
      if (!count) {
        return TraceError{TraceErrorKind::kBadCount, path.string(), line_no,
                          "malformed count '" + cell + "' at minute " + std::to_string(t)};
      }
      out.counts_[f][static_cast<std::size_t>(t)] = *count;
    }
  }
  return out;
}

}  // namespace pulse::trace
