#pragma once
// Invocation-pattern classification.
//
// Assigns each function one of the qualitative pattern classes the paper's
// motivation section distinguishes (Figures 1-2): periodic, steady, diurnal
// (or nocturnal), bursty, heavy-tailed, or idle. Used by trace_explorer for
// workload triage and by tests to validate that the generator's archetypes
// actually produce the pattern they claim.

#include <string_view>

#include "trace/trace.hpp"

namespace pulse::trace {

enum class PatternClass {
  kIdle,       // too few invocations to classify
  kPeriodic,   // inter-arrival mass concentrated at one gap
  kSteady,     // dispersed but stationary arrivals
  kDiurnal,    // strong daily cycle in arrival rate
  kBursty,     // long quiet stretches punctuated by dense clusters
  kHeavyTail,  // many short gaps plus rare very long ones
};

[[nodiscard]] std::string_view to_string(PatternClass c) noexcept;

/// Diagnostic features behind a classification decision.
struct PatternFeatures {
  std::uint64_t invocations = 0;
  double gap_mean = 0.0;
  double gap_cv = 0.0;            // coefficient of variation of inter-arrival gaps
  double dominant_gap_share = 0;  // probability mass of the most common gap
  trace::Minute dominant_gap = 0;  // the most common gap itself
  double tail_gap_ratio = 0.0;    // p99 gap / median gap
  double diurnal_contrast = 0.0;  // (max - min) / (max + min) of hour-of-day rates
  double burst_concentration = 0.0;  // share of invocations in the busiest 10% of
                                     // active minutes
};

/// Extracts the features of one function's series.
[[nodiscard]] PatternFeatures extract_features(const Trace& trace, FunctionId f);

/// Classifies one function. Thresholds are deliberately coarse — the goal is
/// the qualitative triage the paper's Figure 1 performs, not a taxonomy.
[[nodiscard]] PatternClass classify(const Trace& trace, FunctionId f);
[[nodiscard]] PatternClass classify(const PatternFeatures& features);

}  // namespace pulse::trace
