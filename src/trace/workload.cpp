#include "trace/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace pulse::trace {

namespace {

/// The default pattern mix. Index chooses one of 12 archetypes; additional
/// functions beyond 12 wrap around with varied parameters.
PatternPtr make_archetype(std::size_t slot, util::Pcg32& rng) {
  const std::size_t kind = slot % 12;
  // Small per-slot parameter perturbations keep repeated archetypes from
  // being identical functions.
  const auto jig = [&](double lo, double hi) { return rng.uniform(lo, hi); };
  switch (kind) {
    case 0:  // frequent periodic: invocation every 3-5 minutes, jittered
      return periodic(3 + static_cast<Minute>(rng.bounded(3)), 0, 1, 0.08);
    case 1:  // slow periodic: every 8-15 minutes (straddles the keep-alive window)
      return periodic(8 + static_cast<Minute>(rng.bounded(8)), 3, 2, 0.08);
    case 2:  // hot function: invoked nearly every minute (the Azure trace's
             // most popular functions dominate invocation volume)
      return steady_poisson(jig(1.2, 2.5));
    case 3:  // diurnal business-hours function (active floor all day)
      return diurnal(jig(0.05, 0.12), jig(0.8, 1.5), 14 * 60);
    case 4:  // nocturnal batch function
      return diurnal(jig(0.05, 0.12), jig(0.6, 1.2), 14 * 60, /*nocturnal=*/true);
    case 5:  // bursty interactive function over a busy floor
      return bursty(jig(0.10, 0.20), 0.004, 4 + static_cast<Minute>(rng.bounded(5)),
                    jig(2.0, 5.0));
    case 6:  // heavy-tailed gaps, mean a few minutes with a long tail
      return heavy_tail(jig(1.5, 3.0), jig(1.3, 1.8));
    case 7:  // intermittent on/off at tens-of-minutes scale
      return intermittent(30 + static_cast<Minute>(rng.bounded(60)),
                          30 + static_cast<Minute>(rng.bounded(90)), jig(0.5, 1.0));
    case 8:  // drifting behaviour across trace thirds (Figure 2)
      return drifting(periodic(3, 0, 1, 0.05), steady_poisson(jig(0.20, 0.40)),
                      periodic(9, 0, 2, 0.1));
    case 9:  // jittered periodic
      return periodic(5 + static_cast<Minute>(rng.bounded(4)), 1, 2, 0.1);
    case 10:  // lighter Poisson (occasional cold-start candidates)
      return steady_poisson(jig(0.08, 0.15));
    case 11:  // frequent large bursts over a light floor
      return bursty(jig(0.05, 0.10), 0.0015, 6 + static_cast<Minute>(rng.bounded(6)),
                    jig(4.0, 8.0));
    default:
      return steady_poisson(0.1);
  }
}

}  // namespace

Workload build_azure_like_workload(const WorkloadConfig& config) {
  if (config.function_count == 0 || config.duration <= 0) {
    throw std::invalid_argument("build_azure_like_workload: empty workload");
  }
  util::Pcg32 rng(config.seed, /*stream=*/0x9e3779b9);

  Workload w;
  w.trace = Trace(config.function_count, config.duration);
  w.functions.reserve(config.function_count);

  for (FunctionId f = 0; f < config.function_count; ++f) {
    PatternPtr pattern = make_archetype(f, rng);
    util::Pcg32 fn_rng(config.seed + 1000 + f, /*stream=*/f + 1);
    pattern->generate(w.trace, f, fn_rng);
    w.trace.set_function_name(f, "fn" + std::to_string(f) + "_" + pattern->label());
    w.functions.push_back(FunctionSpec{w.trace.function_name(f), pattern->label()});
  }

  // Coordinated peaks, evenly spaced through the middle of the horizon.
  for (std::size_t p = 0; p < config.global_peaks; ++p) {
    const Minute at = config.duration * static_cast<Minute>(p + 1) /
                      static_cast<Minute>(config.global_peaks + 1);
    util::Pcg32 peak_rng(config.seed + 77 + p, /*stream=*/200 + p);
    inject_global_peak(w.trace, at, config.peak_length, config.peak_intensity, peak_rng);
    w.peak_minutes.push_back(at);
  }
  return w;
}

void inject_global_peak(Trace& trace, Minute minute, Minute length, double intensity,
                        util::Pcg32& rng) {
  for (FunctionId f = 0; f < trace.function_count(); ++f) {
    for (Minute dt = 0; dt < length; ++dt) {
      const Minute t = minute + dt;
      if (t < 0 || t >= trace.duration()) continue;
      // 1 + Poisson keeps every function active during the peak — the
      // paper's peak windows have all 12 functions invoked.
      const auto n = static_cast<std::uint32_t>(1 + util::poisson(rng, intensity));
      trace.add_invocations(f, t, n);
    }
  }
}

std::vector<Minute> find_peak_minutes(const Trace& trace, std::size_t k, Minute min_separation) {
  const std::vector<std::uint64_t> agg = trace.aggregate_series();
  std::vector<Minute> order(agg.size());
  for (std::size_t t = 0; t < agg.size(); ++t) order[t] = static_cast<Minute>(t);
  std::sort(order.begin(), order.end(),
            [&](Minute a, Minute b) { return agg[static_cast<std::size_t>(a)] > agg[static_cast<std::size_t>(b)]; });

  std::vector<Minute> peaks;
  for (Minute t : order) {
    if (peaks.size() >= k) break;
    const bool far_enough = std::all_of(peaks.begin(), peaks.end(), [&](Minute p) {
      return std::abs(p - t) >= min_separation;
    });
    if (far_enough) peaks.push_back(t);
  }
  std::sort(peaks.begin(), peaks.end());
  return peaks;
}

}  // namespace pulse::trace
