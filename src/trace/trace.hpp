#pragma once
// Invocation trace at minute resolution.
//
// The paper replays two weeks of the Microsoft Azure Functions production
// trace for 12 functions. A Trace is the same shape: for each function, the
// number of invocations in every minute of the horizon. The simulator, the
// PULSE predictors, and the trace statistics all consume this type.

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "trace/errors.hpp"

namespace pulse::trace {

/// Simulation time in minutes since trace start.
using Minute = std::int64_t;

/// Index of a function within the trace/simulation.
using FunctionId = std::size_t;

constexpr Minute kMinutesPerDay = 24 * 60;

class Trace {
 public:
  Trace() = default;

  /// Creates an empty trace of `function_count` functions over
  /// `duration_minutes` minutes. Function names default to "fn0", "fn1", ...
  Trace(std::size_t function_count, Minute duration_minutes);

  /// Adopts per-function series built elsewhere (the streaming loaders grow
  /// series incrementally and hand them over without copying). Series
  /// shorter than `duration_minutes` are zero-padded; longer ones throw.
  [[nodiscard]] static Trace from_columns(std::vector<std::string> names,
                                          std::vector<std::vector<std::uint32_t>> counts,
                                          Minute duration_minutes);

  /// Exact equality: same horizon, function names and per-minute counts.
  [[nodiscard]] bool operator==(const Trace& other) const noexcept {
    return duration_ == other.duration_ && names_ == other.names_ &&
           counts_ == other.counts_;
  }

  [[nodiscard]] std::size_t function_count() const noexcept { return counts_.size(); }
  [[nodiscard]] Minute duration() const noexcept { return duration_; }

  [[nodiscard]] const std::string& function_name(FunctionId f) const { return names_.at(f); }
  void set_function_name(FunctionId f, std::string name) { names_.at(f) = std::move(name); }

  /// Invocation count of function f at minute t (0 outside the horizon).
  [[nodiscard]] std::uint32_t count(FunctionId f, Minute t) const;

  void set_count(FunctionId f, Minute t, std::uint32_t value);
  void add_invocations(FunctionId f, Minute t, std::uint32_t value = 1);

  /// Whole per-minute series of one function.
  [[nodiscard]] std::span<const std::uint32_t> series(FunctionId f) const {
    return counts_.at(f);
  }

  /// Sum of invocations of function f over the whole horizon.
  [[nodiscard]] std::uint64_t total_invocations(FunctionId f) const;

  /// Sum of invocations across all functions over the whole horizon.
  [[nodiscard]] std::uint64_t total_invocations() const;

  /// Sum across functions at one minute — the "concurrent invocation volume"
  /// the paper's peak analysis looks at.
  [[nodiscard]] std::uint64_t invocations_at(Minute t) const;

  /// Per-minute aggregate series (length == duration()).
  [[nodiscard]] std::vector<std::uint64_t> aggregate_series() const;

  /// Minutes at which function f has at least one invocation, ascending.
  [[nodiscard]] std::vector<Minute> invocation_minutes(FunctionId f) const;

  /// Restricts the trace to [begin, end) minutes (used by the peak-window
  /// experiments of Tables II/III).
  [[nodiscard]] Trace slice(Minute begin, Minute end) const;

  /// Projects the trace onto a subset of its functions: the result's
  /// function i is this trace's functions[i] (series and name copied).
  /// Duplicate or unordered ids are allowed; out-of-range ids throw. The
  /// cluster partitioner builds per-shard sub-traces with this.
  [[nodiscard]] Trace select_functions(std::span<const FunctionId> functions) const;

  /// CSV round trip. Columns: function,name then one count per minute.
  void save_csv(const std::filesystem::path& path) const;
  [[nodiscard]] static Trace load_csv(const std::filesystem::path& path);

  /// Non-throwing loader: malformed input (unreadable file, bad header,
  /// ragged rows, count cells that are not plain non-negative integers)
  /// comes back as a TraceError naming the file, row and cell.
  [[nodiscard]] static TraceResult<Trace> try_load_csv(const std::filesystem::path& path);

 private:
  Minute duration_ = 0;
  std::vector<std::vector<std::uint32_t>> counts_;
  std::vector<std::string> names_;
};

}  // namespace pulse::trace
