#include "trace/azure_stream.hpp"

#include <algorithm>
#include <utility>

#include "util/csv.hpp"
#include "util/line_reader.hpp"

namespace pulse::trace {

namespace {

constexpr std::size_t kMetaColumns = 4;  // owner, app, function, trigger
constexpr std::size_t kDayColumns =
    kMetaColumns + static_cast<std::size_t>(kMinutesPerDay);
constexpr auto kNoFunction = static_cast<FunctionId>(-1);

// Fast field splitter for the (overwhelmingly common) unquoted row. Rows
// containing a quote fall back to the full RFC-4180 parser; the resulting
// fields are identical to what the batch loaders see via parse_csv_line.
void split_line(std::string_view line, std::vector<std::string_view>& fields,
                util::CsvRow& quoted_storage) {
  fields.clear();
  if (line.find('"') == std::string_view::npos) {
    std::size_t begin = 0;
    for (;;) {
      const std::size_t comma = line.find(',', begin);
      if (comma == std::string_view::npos) {
        fields.push_back(line.substr(begin));
        return;
      }
      fields.push_back(line.substr(begin, comma - begin));
      begin = comma + 1;
    }
  }
  quoted_storage = util::parse_csv_line(line);
  fields.reserve(quoted_storage.size());
  for (const std::string& s : quoted_storage) fields.emplace_back(s);
}

TraceError open_error(const std::filesystem::path& path, const char* what) {
  return TraceError{TraceErrorKind::kIo, path.string(), 0, what};
}

}  // namespace

TraceFormat parse_trace_format(std::string_view name) noexcept {
  if (name == "azure2019" || name == "2019") return TraceFormat::kAzure2019Day;
  if (name == "azure2021" || name == "2021") return TraceFormat::kAzure2021Invocations;
  return TraceFormat::kUnknown;
}

TraceResult<TraceFormat> detect_trace_format(const std::filesystem::path& path) {
  util::LineReader reader(path);
  if (!reader.ok()) return open_error(path, "cannot open trace file");
  std::string_view line;
  while (reader.next(line)) {
    if (line.empty()) continue;
    const util::CsvRow fields = util::parse_csv_line(line);
    if (!fields.empty() && fields[0] == "HashOwner") return TraceFormat::kAzure2019Day;
    if (fields.size() >= 2 && fields[0] == "app" && fields[1] == "func") {
      return TraceFormat::kAzure2021Invocations;
    }
    if (fields.size() == kDayColumns) return TraceFormat::kAzure2019Day;
    return TraceError{TraceErrorKind::kBadHeader, path.string(), reader.line_number(),
                      "cannot autodetect trace format from first row (" +
                          std::to_string(fields.size()) + " columns)",
                      reader.line_offset()};
  }
  return TraceError{TraceErrorKind::kBadHeader, path.string(), 0,
                    "cannot autodetect trace format of an empty file"};
}

FunctionId StreamingTraceBuilder::intern(AzureFunctionId id) {
  const std::string key = id.qualified_name();
  const FunctionId existing = lookup(key);
  if (existing != kNoFunction) return existing;
  return insert(key, std::move(id));
}

FunctionId StreamingTraceBuilder::lookup(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? static_cast<FunctionId>(-1) : it->second;
}

FunctionId StreamingTraceBuilder::insert(std::string_view key, AzureFunctionId id) {
  const FunctionId f = ids_.size();
  index_.emplace(std::string(key), f);
  ids_.push_back(std::move(id));
  series_.emplace_back();
  if (horizon_hint_ > 0) series_.back().reserve(static_cast<std::size_t>(horizon_hint_));
  return f;
}

void StreamingTraceBuilder::add(FunctionId f, Minute t, std::uint32_t count) {
  auto& series = series_[f];
  const auto idx = static_cast<std::size_t>(t);
  if (idx >= series.size()) {
    if (idx >= series.capacity()) {
      series.reserve(std::max(series.capacity() * 2, idx + 1));
    }
    series.resize(idx + 1, 0);
  }
  series[idx] += count;
  max_minute_ = std::max(max_minute_, t);
}

AzureTrace StreamingTraceBuilder::finish(Minute duration_minutes) && {
  std::vector<std::string> names;
  names.reserve(ids_.size());
  for (const AzureFunctionId& id : ids_) names.push_back(id.qualified_name());
  AzureTrace out;
  out.trace =
      Trace::from_columns(std::move(names), std::move(series_), duration_minutes);
  out.functions = std::move(ids_);
  return out;
}

namespace {

// Streaming 2019 day-format loader: one pass per file, rows fed straight
// into the builder. Mirrors try_load_azure_days exactly (function order,
// duplicate semantics, horizon) — the equality is test- and bench-gated.
TraceResult<AzureTrace> stream_load_2019(const std::vector<std::filesystem::path>& paths,
                                         const StreamLoadOptions& options,
                                         StreamLoadStats& stats) {
  StreamingTraceBuilder builder;
  const Minute duration = static_cast<Minute>(paths.size()) * kMinutesPerDay;
  builder.set_horizon_hint(duration);

  std::vector<std::string_view> fields;
  util::CsvRow quoted_storage;
  std::string key;
  // Per-file duplicate detection: stamp[f] holds the 1-based index of the
  // last file that contributed a row for function f.
  std::vector<std::size_t> stamp;
  std::uint64_t duplicate_rows = 0;

  for (std::size_t day = 0; day < paths.size(); ++day) {
    const std::filesystem::path& path = paths[day];
    util::LineReader reader(path, options.chunk_bytes);
    if (!reader.ok()) return open_error(path, "cannot open Azure day CSV");
    const Minute base = static_cast<Minute>(day) * kMinutesPerDay;

    std::string_view line;
    bool header_checked = false;
    while (reader.next(line)) {
      if (line.empty()) continue;
      split_line(line, fields, quoted_storage);
      if (!header_checked) {
        header_checked = true;
        if (!fields.empty() && fields[0] == "HashOwner") continue;
      }
      if (fields.size() != kDayColumns) {
        return TraceError{TraceErrorKind::kMalformedRow, path.string(),
                          reader.line_number(),
                          "expected " + std::to_string(kDayColumns) + " columns, got " +
                              std::to_string(fields.size()),
                          reader.line_offset()};
      }
      key.assign(fields[0]);
      key += '/';
      key += fields[1];
      key += '/';
      key += fields[2];
      FunctionId f = builder.lookup(key);
      if (f == kNoFunction) {
        f = builder.insert(key, AzureFunctionId{std::string(fields[0]),
                                                std::string(fields[1]),
                                                std::string(fields[2]),
                                                std::string(fields[3])});
      }
      if (f >= stamp.size()) stamp.resize(f + 1, 0);
      if (stamp[f] == day + 1) {
        if (options.duplicates == DuplicatePolicy::kError) {
          return TraceError{TraceErrorKind::kDuplicateRow, path.string(),
                            reader.line_number(),
                            "duplicate row for function '" + key + "'",
                            reader.line_offset()};
        }
        ++duplicate_rows;
      }
      stamp[f] = day + 1;

      for (std::size_t m = 0; m < static_cast<std::size_t>(kMinutesPerDay); ++m) {
        const std::string_view cell = fields[kMetaColumns + m];
        const auto count = parse_invocation_count(cell);
        if (!count) {
          return TraceError{TraceErrorKind::kBadCount, path.string(),
                            reader.line_number(),
                            "malformed count '" + std::string(cell) + "' at minute " +
                                std::to_string(m + 1),
                            reader.line_offset()};
        }
        if (*count > 0) {
          builder.add(f, base + static_cast<Minute>(m), *count);
          stats.invocations += *count;
        }
      }
      ++stats.data_rows;
    }
    ++stats.files;
    stats.bytes += reader.bytes_consumed();
    stats.max_line_bytes = std::max(stats.max_line_bytes, reader.max_line_bytes());
  }

  stats.duplicate_rows = duplicate_rows;
  AzureTrace out = std::move(builder).finish(duration);
  out.duplicate_rows = duplicate_rows;
  return out;
}

// Streaming 2021 invocation-format loader. All files share the trace epoch;
// the horizon is the invocation span rounded up to whole days, exactly as
// try_load_azure_invocations computes it.
TraceResult<AzureTrace> stream_load_2021(const std::vector<std::filesystem::path>& paths,
                                         const StreamLoadOptions& options,
                                         StreamLoadStats& stats) {
  StreamingTraceBuilder builder;
  std::vector<std::string_view> fields;
  util::CsvRow quoted_storage;
  std::string key;

  for (const std::filesystem::path& path : paths) {
    util::LineReader reader(path, options.chunk_bytes);
    if (!reader.ok()) return open_error(path, "cannot open Azure invocation CSV");

    std::string_view line;
    bool header_seen = false;
    while (reader.next(line)) {
      if (line.empty()) continue;
      split_line(line, fields, quoted_storage);
      if (!header_seen) {
        header_seen = true;
        if (fields.size() < 2 || fields[0] != "app" || fields[1] != "func") {
          return TraceError{TraceErrorKind::kBadHeader, path.string(),
                            reader.line_number(),
                            "expected 2021 invocation header 'app,func,end_timestamp,"
                            "duration'",
                            reader.line_offset()};
        }
        continue;
      }
      if (fields.size() != 4) {
        return TraceError{TraceErrorKind::kMalformedRow, path.string(),
                          reader.line_number(),
                          "expected 4 columns, got " + std::to_string(fields.size()),
                          reader.line_offset()};
      }
      const auto end_ts = parse_seconds(fields[2]);
      const auto duration_s = parse_seconds(fields[3]);
      if (!end_ts || !duration_s) {
        return TraceError{TraceErrorKind::kBadTimestamp, path.string(),
                          reader.line_number(),
                          "malformed timestamp/duration '" + std::string(fields[2]) +
                              "','" + std::string(fields[3]) + "'",
                          reader.line_offset()};
      }
      key.assign(fields[0]);
      key += '/';
      key += fields[1];
      FunctionId f = builder.lookup(key);
      if (f == kNoFunction) {
        f = builder.insert(key, AzureFunctionId{"", std::string(fields[0]),
                                                std::string(fields[1]), ""});
      }
      bool clamped = false;
      const Minute minute = invocation_start_minute(*end_ts, *duration_s, &clamped);
      if (clamped) ++stats.clamped_rows;
      builder.add(f, minute, 1);
      ++stats.data_rows;
      ++stats.invocations;
    }
    if (!header_seen) {
      return TraceError{TraceErrorKind::kBadHeader, path.string(), 0,
                        "empty 2021 invocation file (no header row)"};
    }
    ++stats.files;
    stats.bytes += reader.bytes_consumed();
    stats.max_line_bytes = std::max(stats.max_line_bytes, reader.max_line_bytes());
  }

  const Minute max_minute = builder.max_minute();
  const Minute duration =
      max_minute < 0 ? 0 : ((max_minute / kMinutesPerDay) + 1) * kMinutesPerDay;
  return std::move(builder).finish(duration);
}

}  // namespace

TraceResult<AzureTrace> stream_load_azure(const std::vector<std::filesystem::path>& paths,
                                          const StreamLoadOptions& options,
                                          StreamLoadStats* stats) {
  if (paths.empty()) {
    return TraceError{TraceErrorKind::kIo, "", 0, "stream_load_azure: no files given"};
  }
  TraceFormat format = options.format;
  if (format == TraceFormat::kUnknown) {
    auto detected = detect_trace_format(paths.front());
    if (!detected) return std::move(detected.error());
    format = detected.value();
  }
  StreamLoadStats local;
  StreamLoadStats& s = stats != nullptr ? *stats : local;
  s = StreamLoadStats{};
  s.format = format;
  if (format == TraceFormat::kAzure2019Day) {
    return stream_load_2019(paths, options, s);
  }
  return stream_load_2021(paths, options, s);
}

}  // namespace pulse::trace
