#pragma once
// Invocation pattern generators.
//
// The Azure production trace the paper replays is not redistributable, so we
// synthesize functions from the pattern classes the paper itself documents:
// Figure 1 shows five qualitatively different inter-arrival shapes within the
// 10-minute keep-alive window; Figure 2 shows one function whose pattern
// drifts across trace thirds; §III-B describes diurnal, nocturnal and
// intermittent functions; §II identifies coordinated invocation peaks.
// Each generator fills one function's minute series deterministically from
// an explicit RNG, so traces are reproducible from a single seed.

#include <memory>
#include <string>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace pulse::trace {

/// Interface for one function's invocation pattern.
class Pattern {
 public:
  virtual ~Pattern() = default;

  /// Writes invocation counts for minutes [0, trace.duration()) of function
  /// `f` into `trace` (adds to existing counts, so patterns compose).
  virtual void generate(Trace& trace, FunctionId f, util::Pcg32& rng) const = 0;

  /// Human-readable pattern label ("periodic(7)", "diurnal", ...).
  [[nodiscard]] virtual std::string label() const = 0;
};

using PatternPtr = std::unique_ptr<Pattern>;

/// Homogeneous Poisson arrivals at `rate_per_minute`.
[[nodiscard]] PatternPtr steady_poisson(double rate_per_minute);

/// One invocation every `period` minutes (phase offset, +/- `jitter` minutes
/// of uniform noise, each firing skipped with `miss_probability`).
[[nodiscard]] PatternPtr periodic(Minute period, Minute phase = 0, Minute jitter = 0,
                                  double miss_probability = 0.0);

/// Day/night sinusoidal rate: peaks at `peak_minute_of_day` with
/// `peak_rate`, floors at `base_rate`. `nocturnal` flips the phase.
[[nodiscard]] PatternPtr diurnal(double base_rate, double peak_rate,
                                 Minute peak_minute_of_day = 14 * 60, bool nocturnal = false);

/// Mostly idle (rate `idle_rate`); bursts start with probability
/// `burst_start_probability` per minute and last `burst_length` minutes at
/// `burst_rate`. Produces the sudden invocation spikes of §II.
[[nodiscard]] PatternPtr bursty(double idle_rate, double burst_start_probability,
                                Minute burst_length, double burst_rate);

/// Inter-arrival gaps drawn from a Pareto distribution (heavy tail): many
/// short gaps plus occasional very long silences — the shape Wild's
/// histogram classifies as out-of-bounds.
[[nodiscard]] PatternPtr heavy_tail(double scale_minutes, double alpha);

/// Alternates `on_length` active minutes (Poisson at `on_rate`) with
/// `off_length` fully idle minutes.
[[nodiscard]] PatternPtr intermittent(Minute on_length, Minute off_length, double on_rate);

/// Pattern that changes across thirds of the horizon (Figure 2): delegates
/// to three sub-patterns, one per third.
[[nodiscard]] PatternPtr drifting(PatternPtr first, PatternPtr middle, PatternPtr last);

}  // namespace pulse::trace
