#pragma once
// Structured ingestion errors. Trace files come from outside the process
// (the Azure dataset, exported CSVs, user tooling), so malformed input is an
// expected condition: loaders report it as a TraceError carrying the file,
// line, and offending cell instead of crashing or — worse — silently
// wrapping a negative count into four billion invocations.

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace pulse::trace {

enum class TraceErrorKind {
  kIo,            // file missing / unreadable
  kBadHeader,     // header row absent or the wrong shape
  kMalformedRow,  // wrong column count
  kBadCount,      // count cell not a valid non-negative integer (NaN, -3, 1.5…)
  kBadTimestamp,  // 2021-format timestamp/duration cell not a finite number
  kDuplicateRow,  // same (owner, app, function) twice in one day file (strict mode)
};

[[nodiscard]] constexpr std::string_view to_string(TraceErrorKind kind) noexcept {
  switch (kind) {
    case TraceErrorKind::kIo: return "io";
    case TraceErrorKind::kBadHeader: return "bad-header";
    case TraceErrorKind::kMalformedRow: return "malformed-row";
    case TraceErrorKind::kBadCount: return "bad-count";
    case TraceErrorKind::kBadTimestamp: return "bad-timestamp";
    case TraceErrorKind::kDuplicateRow: return "duplicate-row";
  }
  return "unknown";
}

struct TraceError {
  TraceErrorKind kind = TraceErrorKind::kIo;
  std::string file;
  std::size_t line = 0;  // 1-based; 0 when the error is not tied to a line
  std::string message;
  std::uint64_t byte_offset = 0;  // offset of the offending line's first byte;
                                  // 0 when unknown (getline-based loaders)

  [[nodiscard]] std::string to_string() const {
    std::string out = file;
    if (line > 0) {
      out += ':';
      out += std::to_string(line);
    }
    if (!out.empty()) out += ": ";
    out += '[';
    out += trace::to_string(kind);
    out += "] ";
    out += message;
    if (byte_offset > 0) {
      out += " (byte ";
      out += std::to_string(byte_offset);
      out += ')';
    }
    return out;
  }
};

template <typename T>
using TraceResult = util::Result<T, TraceError>;

/// Strict per-minute invocation count parser. Accepts only an optional
/// run of ASCII digits (empty ⇒ 0, matching the Azure dataset's sparse
/// cells); rejects signs, decimals, exponents, "nan"/"inf", trailing
/// garbage, and values that overflow uint32. std::stoul accepts all of
/// those (e.g. "-1" wraps to 4294967295), which is how one bad row used to
/// corrupt a whole run.
[[nodiscard]] inline std::optional<std::uint32_t> parse_invocation_count(
    std::string_view cell) noexcept {
  if (cell.empty()) return 0u;
  std::uint64_t value = 0;
  for (char c : cell) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > std::numeric_limits<std::uint32_t>::max()) return std::nullopt;
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace pulse::trace
