#include "trace/validation.hpp"

#include <unordered_map>

namespace pulse::trace {

namespace {

void add(ValidationReport& report, ValidationSeverity severity, FunctionId f, Minute t,
         std::string message) {
  report.issues.push_back(ValidationIssue{severity, f, t, std::move(message)});
}

}  // namespace

ValidationReport validate_trace(const Trace& trace, const ValidationOptions& options) {
  ValidationReport report;
  const FunctionId trace_wide = trace.function_count();

  if (trace.duration() <= 0) {
    add(report, ValidationSeverity::kError, trace_wide, -1, "trace has zero duration");
  }
  if (trace.function_count() == 0) {
    add(report, ValidationSeverity::kError, trace_wide, -1, "trace has no functions");
  }

  std::unordered_map<std::string, FunctionId> seen_names;
  for (FunctionId f = 0; f < trace.function_count(); ++f) {
    const std::string& name = trace.function_name(f);
    if (name.empty()) {
      add(report, ValidationSeverity::kWarning, f, -1, "function has an empty name");
    } else if (const auto [it, inserted] = seen_names.emplace(name, f); !inserted) {
      add(report, ValidationSeverity::kWarning, f, -1,
          "duplicate function name '" + name + "' (first at function " +
              std::to_string(it->second) + ")");
    }

    bool any = false;
    for (Minute t = 0; t < trace.duration(); ++t) {
      const std::uint32_t c = trace.count(f, t);
      if (c > 0) any = true;
      if (c > options.max_count_per_minute) {
        add(report, ValidationSeverity::kError, f, t,
            "count " + std::to_string(c) + " exceeds plausibility bound " +
                std::to_string(options.max_count_per_minute));
      }
    }
    if (!any && options.flag_idle_functions && trace.duration() > 0) {
      add(report, ValidationSeverity::kWarning, f, -1,
          "function has no invocations over the whole horizon");
    }
  }
  return report;
}

}  // namespace pulse::trace
