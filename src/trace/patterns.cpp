#include "trace/patterns.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <sstream>

namespace pulse::trace {

namespace {

class SteadyPoisson final : public Pattern {
 public:
  explicit SteadyPoisson(double rate) : rate_(rate) {}

  void generate(Trace& trace, FunctionId f, util::Pcg32& rng) const override {
    for (Minute t = 0; t < trace.duration(); ++t) {
      const int n = util::poisson(rng, rate_);
      if (n > 0) trace.add_invocations(f, t, static_cast<std::uint32_t>(n));
    }
  }

  [[nodiscard]] std::string label() const override {
    std::ostringstream os;
    os << "poisson(" << rate_ << "/min)";
    return os.str();
  }

 private:
  double rate_;
};

class Periodic final : public Pattern {
 public:
  Periodic(Minute period, Minute phase, Minute jitter, double miss_probability)
      : period_(std::max<Minute>(1, period)),
        phase_(phase),
        jitter_(jitter),
        miss_probability_(miss_probability) {}

  void generate(Trace& trace, FunctionId f, util::Pcg32& rng) const override {
    for (Minute t = phase_; t < trace.duration(); t += period_) {
      if (miss_probability_ > 0.0 && rng.bernoulli(miss_probability_)) continue;
      Minute at = t;
      if (jitter_ > 0) {
        at += static_cast<Minute>(rng.bounded(static_cast<std::uint32_t>(2 * jitter_ + 1))) -
              jitter_;
      }
      if (at >= 0 && at < trace.duration()) trace.add_invocations(f, at, 1);
    }
  }

  [[nodiscard]] std::string label() const override {
    std::ostringstream os;
    os << "periodic(" << period_ << "min)";
    return os.str();
  }

 private:
  Minute period_;
  Minute phase_;
  Minute jitter_;
  double miss_probability_;
};

class Diurnal final : public Pattern {
 public:
  Diurnal(double base_rate, double peak_rate, Minute peak_minute_of_day, bool nocturnal)
      : base_rate_(base_rate),
        peak_rate_(peak_rate),
        peak_minute_(peak_minute_of_day),
        nocturnal_(nocturnal) {}

  void generate(Trace& trace, FunctionId f, util::Pcg32& rng) const override {
    for (Minute t = 0; t < trace.duration(); ++t) {
      const double phase = 2.0 * std::numbers::pi *
                           static_cast<double>((t - peak_minute_) % kMinutesPerDay) /
                           static_cast<double>(kMinutesPerDay);
      double wave = 0.5 * (1.0 + std::cos(phase));  // 1 at the peak minute
      if (nocturnal_) wave = 1.0 - wave;
      const double rate = base_rate_ + (peak_rate_ - base_rate_) * wave;
      const int n = util::poisson(rng, rate);
      if (n > 0) trace.add_invocations(f, t, static_cast<std::uint32_t>(n));
    }
  }

  [[nodiscard]] std::string label() const override {
    return nocturnal_ ? "nocturnal" : "diurnal";
  }

 private:
  double base_rate_;
  double peak_rate_;
  Minute peak_minute_;
  bool nocturnal_;
};

class Bursty final : public Pattern {
 public:
  Bursty(double idle_rate, double burst_start_probability, Minute burst_length,
         double burst_rate)
      : idle_rate_(idle_rate),
        burst_start_probability_(burst_start_probability),
        burst_length_(std::max<Minute>(1, burst_length)),
        burst_rate_(burst_rate) {}

  void generate(Trace& trace, FunctionId f, util::Pcg32& rng) const override {
    Minute burst_remaining = 0;
    for (Minute t = 0; t < trace.duration(); ++t) {
      if (burst_remaining == 0 && rng.bernoulli(burst_start_probability_)) {
        burst_remaining = burst_length_;
      }
      const double rate = burst_remaining > 0 ? burst_rate_ : idle_rate_;
      if (burst_remaining > 0) --burst_remaining;
      const int n = util::poisson(rng, rate);
      if (n > 0) trace.add_invocations(f, t, static_cast<std::uint32_t>(n));
    }
  }

  [[nodiscard]] std::string label() const override { return "bursty"; }

 private:
  double idle_rate_;
  double burst_start_probability_;
  Minute burst_length_;
  double burst_rate_;
};

class HeavyTail final : public Pattern {
 public:
  HeavyTail(double scale, double alpha) : scale_(scale), alpha_(alpha) {}

  void generate(Trace& trace, FunctionId f, util::Pcg32& rng) const override {
    double t = util::pareto(rng, scale_, alpha_);
    while (static_cast<Minute>(t) < trace.duration()) {
      trace.add_invocations(f, static_cast<Minute>(t), 1);
      t += util::pareto(rng, scale_, alpha_);
    }
  }

  [[nodiscard]] std::string label() const override {
    std::ostringstream os;
    os << "heavy_tail(alpha=" << alpha_ << ")";
    return os.str();
  }

 private:
  double scale_;
  double alpha_;
};

class Intermittent final : public Pattern {
 public:
  Intermittent(Minute on_length, Minute off_length, double on_rate)
      : on_length_(std::max<Minute>(1, on_length)),
        off_length_(std::max<Minute>(0, off_length)),
        on_rate_(on_rate) {}

  void generate(Trace& trace, FunctionId f, util::Pcg32& rng) const override {
    const Minute cycle = on_length_ + off_length_;
    for (Minute t = 0; t < trace.duration(); ++t) {
      if (t % cycle < on_length_) {
        const int n = util::poisson(rng, on_rate_);
        if (n > 0) trace.add_invocations(f, t, static_cast<std::uint32_t>(n));
      }
    }
  }

  [[nodiscard]] std::string label() const override { return "intermittent"; }

 private:
  Minute on_length_;
  Minute off_length_;
  double on_rate_;
};

/// Applies each sub-pattern to its third of the horizon by generating into a
/// scratch trace of the third's length and copying the counts in.
class Drifting final : public Pattern {
 public:
  Drifting(PatternPtr first, PatternPtr middle, PatternPtr last)
      : parts_{std::move(first), std::move(middle), std::move(last)} {}

  void generate(Trace& trace, FunctionId f, util::Pcg32& rng) const override {
    const Minute third = trace.duration() / 3;
    for (std::size_t part = 0; part < parts_.size(); ++part) {
      const Minute begin = static_cast<Minute>(part) * third;
      const Minute end = part + 1 == parts_.size() ? trace.duration() : begin + third;
      if (end <= begin) continue;
      Trace scratch(1, end - begin);
      parts_[part]->generate(scratch, 0, rng);
      for (Minute t = 0; t < scratch.duration(); ++t) {
        const std::uint32_t c = scratch.count(0, t);
        if (c > 0) trace.add_invocations(f, begin + t, c);
      }
    }
  }

  [[nodiscard]] std::string label() const override {
    return "drifting(" + parts_[0]->label() + " -> " + parts_[1]->label() + " -> " +
           parts_[2]->label() + ")";
  }

 private:
  std::array<PatternPtr, 3> parts_;
};

}  // namespace

PatternPtr steady_poisson(double rate_per_minute) {
  return std::make_unique<SteadyPoisson>(rate_per_minute);
}

PatternPtr periodic(Minute period, Minute phase, Minute jitter, double miss_probability) {
  return std::make_unique<Periodic>(period, phase, jitter, miss_probability);
}

PatternPtr diurnal(double base_rate, double peak_rate, Minute peak_minute_of_day,
                   bool nocturnal) {
  return std::make_unique<Diurnal>(base_rate, peak_rate, peak_minute_of_day, nocturnal);
}

PatternPtr bursty(double idle_rate, double burst_start_probability, Minute burst_length,
                  double burst_rate) {
  return std::make_unique<Bursty>(idle_rate, burst_start_probability, burst_length, burst_rate);
}

PatternPtr heavy_tail(double scale_minutes, double alpha) {
  return std::make_unique<HeavyTail>(scale_minutes, alpha);
}

PatternPtr intermittent(Minute on_length, Minute off_length, double on_rate) {
  return std::make_unique<Intermittent>(on_length, off_length, on_rate);
}

PatternPtr drifting(PatternPtr first, PatternPtr middle, PatternPtr last) {
  return std::make_unique<Drifting>(std::move(first), std::move(middle), std::move(last));
}

}  // namespace pulse::trace
