#pragma once
// Azure-like composite workload builder.
//
// Assembles the 12-function, two-week workload the paper's evaluation runs
// on: a mix of the pattern classes of Figures 1-2 plus injected global
// invocation peaks (the "Peak I"/"Peak II" events of Tables II-III).

#include <string>
#include <vector>

#include "trace/patterns.hpp"
#include "trace/trace.hpp"

namespace pulse::trace {

struct WorkloadConfig {
  std::size_t function_count = 12;
  Minute duration = 14 * kMinutesPerDay;  // two weeks, like the Azure trace
  std::uint64_t seed = 42;

  /// Number of coordinated invocation peaks injected across the horizon.
  std::size_t global_peaks = 2;

  /// During a peak, every function receives Poisson(peak_intensity)
  /// invocations per minute for peak_length minutes.
  double peak_intensity = 6.0;
  Minute peak_length = 3;
};

/// One function's description inside a built workload.
struct FunctionSpec {
  std::string name;
  std::string pattern_label;
};

/// A generated workload: the trace plus per-function metadata and the
/// minutes at which global peaks were injected.
struct Workload {
  Trace trace;
  std::vector<FunctionSpec> functions;
  std::vector<Minute> peak_minutes;
};

/// Builds the default 12-function Azure-like workload. Deterministic in
/// config.seed. The 12 slots cycle through: periodic-fast, periodic-slow,
/// steady, diurnal, nocturnal, bursty, heavy-tail, intermittent, drifting,
/// periodic-jittered, sparse-poisson, bursty-rare — covering every pattern
/// class Figures 1-2 exhibit.
[[nodiscard]] Workload build_azure_like_workload(const WorkloadConfig& config = {});

/// Injects a coordinated invocation spike at `minute` into every function of
/// `trace` (Poisson(intensity) per function-minute over `length` minutes).
void inject_global_peak(Trace& trace, Minute minute, Minute length, double intensity,
                        util::Pcg32& rng);

/// Locates the `k` most prominent peaks of the aggregate invocation series
/// (local maxima by volume, greedily separated by at least `min_separation`
/// minutes) — how the paper designated Peak I and Peak II.
[[nodiscard]] std::vector<Minute> find_peak_minutes(const Trace& trace, std::size_t k,
                                                    Minute min_separation = 60);

}  // namespace pulse::trace
