#include "trace/analysis.hpp"

namespace pulse::trace {

InterArrivalProfile interarrival_profile(const Trace& trace, FunctionId f, Minute begin,
                                         Minute end) {
  if (end < 0) end = trace.duration();
  InterArrivalProfile profile;

  const std::vector<Minute> minutes = trace.invocation_minutes(f);
  std::array<std::uint64_t, kKeepAliveWindow> counts{};
  std::uint64_t beyond = 0;
  std::uint64_t observed = 0;

  for (std::size_t i = 0; i < minutes.size(); ++i) {
    const Minute t = minutes[i];
    if (t < begin || t >= end) continue;
    ++observed;
    if (i + 1 >= minutes.size()) {
      ++beyond;
      continue;
    }
    const Minute gap = minutes[i + 1] - t;
    if (gap >= 1 && gap <= kKeepAliveWindow) {
      ++counts[static_cast<std::size_t>(gap - 1)];
    } else {
      ++beyond;
    }
  }

  profile.observed_invocations = observed;
  if (observed > 0) {
    for (std::size_t d = 0; d < counts.size(); ++d) {
      profile.within_window[d] =
          100.0 * static_cast<double>(counts[d]) / static_cast<double>(observed);
    }
    profile.beyond_window = 100.0 * static_cast<double>(beyond) / static_cast<double>(observed);
  }
  return profile;
}

std::array<InterArrivalProfile, 3> interarrival_profile_by_thirds(const Trace& trace,
                                                                  FunctionId f) {
  const Minute third = trace.duration() / 3;
  return {
      interarrival_profile(trace, f, 0, third),
      interarrival_profile(trace, f, third, 2 * third),
      interarrival_profile(trace, f, 2 * third, trace.duration()),
  };
}

std::vector<Minute> interarrival_gaps(const Trace& trace, FunctionId f) {
  const std::vector<Minute> minutes = trace.invocation_minutes(f);
  std::vector<Minute> gaps;
  if (minutes.size() < 2) return gaps;
  gaps.reserve(minutes.size() - 1);
  for (std::size_t i = 1; i < minutes.size(); ++i) {
    gaps.push_back(minutes[i] - minutes[i - 1]);
  }
  return gaps;
}

}  // namespace pulse::trace
