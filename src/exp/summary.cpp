#include "exp/summary.hpp"

#include "policies/factory.hpp"
#include "sim/engine.hpp"

namespace pulse::exp {

PolicySummary summarize(std::string policy, const sim::EnsembleResult& ensemble) {
  PolicySummary s;
  s.policy = std::move(policy);
  s.service_time_s = ensemble.mean_service_time_s();
  s.keepalive_cost_usd = ensemble.mean_keepalive_cost_usd();
  s.accuracy_pct = ensemble.mean_accuracy_pct();
  s.warm_fraction = ensemble.mean_warm_fraction();
  s.overhead_s = ensemble.mean_overhead_s();
  s.runs = ensemble.runs.size();
  s.metrics = ensemble.metrics;
  return s;
}

PolicySummary run_policy_ensemble(const Scenario& scenario, const std::string& policy,
                                  std::size_t runs, std::uint64_t seed,
                                  bool measure_overhead, const obs::Observer& observer) {
  sim::EnsembleConfig config;
  config.runs = runs;
  config.seed = seed;
  config.engine.measure_overhead = measure_overhead;
  config.engine.observer = observer;
  const sim::EnsembleResult ensemble =
      sim::run_ensemble(scenario.zoo, scenario.workload.trace,
                        [&] { return policies::make_policy(policy); }, config);
  return summarize(policy, ensemble);
}

sim::RunResult run_policy_single(const Scenario& scenario, const std::string& policy,
                                 std::uint64_t seed) {
  const sim::Deployment deployment = sim::Deployment::round_robin(
      scenario.zoo, scenario.workload.trace.function_count());
  sim::EngineConfig config;
  config.record_series = true;
  config.seed = seed;
  sim::SimulationEngine engine(deployment, scenario.workload.trace, config);
  auto p = policies::make_policy(policy);
  return engine.run(*p);
}

ImprovementRow improvement_over(const PolicySummary& baseline, const PolicySummary& ours) {
  ImprovementRow row;
  row.policy = ours.policy;
  row.service_time_pct = sim::improvement_pct(baseline.service_time_s, ours.service_time_s);
  row.keepalive_cost_pct =
      sim::improvement_pct(baseline.keepalive_cost_usd, ours.keepalive_cost_usd);
  row.accuracy_pct = sim::change_pct(baseline.accuracy_pct, ours.accuracy_pct);
  return row;
}

}  // namespace pulse::exp
