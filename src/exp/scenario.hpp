#pragma once
// Shared experiment scenario: the model zoo plus the Azure-like workload,
// built once per bench binary so every experiment runs on the same
// substrate the paper's evaluation does (12 functions, two weeks, Table IV
// models, injected invocation peaks).
//
// Also hosts the derived-scenario catalog: deterministic transforms that
// synthesize the workload regimes characterized in "The High Cost of
// Keeping Warm" from any loaded trace (real Azure days streamed through
// trace/azure_stream.hpp, or the builtin generator) — day-scale pattern
// drift, flash-crowd arrival spikes, and multi-tenant interference mixes.
// Every transform draws per-cell randomness from counter-hashed streams
// (util::hash_uniform keyed on seed/function/minute), so results are
// bit-reproducible under a fixed seed and independent of evaluation order.

#include <cstdint>
#include <string_view>
#include <vector>

#include "models/zoo.hpp"
#include "trace/workload.hpp"

namespace pulse::exp {

struct ScenarioConfig {
  std::size_t function_count = 12;
  /// Days of trace. The paper replays 14; benches default to 7 to keep a
  /// full multi-policy ensemble sweep in the minutes range on one core
  /// (results are shape-stable from ~4 days up).
  trace::Minute days = 7;
  std::uint64_t seed = 42;
  std::size_t global_peaks = 2;
  double peak_intensity = 6.0;
};

struct Scenario {
  models::ModelZoo zoo;
  trace::Workload workload;
  ScenarioConfig config;
};

/// Builds the default scenario (builtin zoo + Azure-like workload).
[[nodiscard]] Scenario make_scenario(const ScenarioConfig& config = {});

/// Ensemble size used by the benches. The paper runs 1000; we default to a
/// smaller ensemble sized for a single-core run and allow override through
/// the PULSE_BENCH_RUNS environment variable.
[[nodiscard]] std::size_t bench_ensemble_runs(std::size_t default_runs = 60);

/// Trace days used by benches, overridable via PULSE_BENCH_DAYS.
[[nodiscard]] trace::Minute bench_trace_days(trace::Minute default_days = 7);

// ---------------------------------------------------------------------------
// Derived scenarios
// ---------------------------------------------------------------------------

/// Day-scale pattern drift: day d of the result replays day d of the base
/// trace with its within-day profile rotated right by
/// `phase_drift_minutes_per_day * d` minutes and its rate scaled by
/// `(1 + amplitude_drift_per_day)^d`. With zero amplitude drift the
/// transform is an exact (randomness-free) rotation; fractional expected
/// counts are resolved by seeded stochastic rounding.
struct PatternDriftConfig {
  double phase_drift_minutes_per_day = 30.0;
  double amplitude_drift_per_day = 0.0;
  std::uint64_t seed = 42;
};
[[nodiscard]] trace::Trace apply_pattern_drift(const trace::Trace& base,
                                               const PatternDriftConfig& config = {});

/// Flash crowds: `crowds` spike events at seeded minutes. Each event picks
/// a `participation` fraction of the functions; inside the event envelope
/// (linear ramp up over `ramp` minutes, `hold` minutes at full strength,
/// linear ramp down) a participant's counts are amplified towards
/// `multiplier`x and topped up with Poisson(`surge_rate` * envelope) fresh
/// arrivals per minute — the correlated-arrival regime keep-alive policies
/// over-fit their windows on.
struct FlashCrowdConfig {
  std::size_t crowds = 3;
  double multiplier = 8.0;
  trace::Minute ramp = 10;
  trace::Minute hold = 5;
  double participation = 0.5;
  double surge_rate = 2.0;
  std::uint64_t seed = 42;
};
[[nodiscard]] trace::Trace inject_flash_crowds(const trace::Trace& base,
                                               const FlashCrowdConfig& config = {});

/// The seeded spike centers inject_flash_crowds uses for `duration` minutes
/// (exposed so experiments can align measurement windows with the events).
[[nodiscard]] std::vector<trace::Minute> flash_crowd_minutes(
    const FlashCrowdConfig& config, trace::Minute duration);

/// Multi-tenant interference: `tenants` phase-staggered clones of the base
/// trace share one cluster (tenant i's functions are named "t<i>/<name>"
/// and replay the base rotated by i * `phase_stagger` minutes, scaled by
/// `load_scale`). When there are at least two tenants the last one is an
/// aggressor: every `burst_every` minutes it amplifies to
/// `aggressor_scale`x for `burst_length` minutes, creating the cross-tenant
/// capacity pressure the sharded engine's market has to absorb.
struct MultiTenantConfig {
  std::size_t tenants = 3;
  trace::Minute phase_stagger = 120;
  double load_scale = 1.0;
  double aggressor_scale = 4.0;
  trace::Minute burst_every = 720;
  trace::Minute burst_length = 30;
  std::uint64_t seed = 42;
};
[[nodiscard]] trace::Trace compose_multi_tenant(const trace::Trace& base,
                                                const MultiTenantConfig& config = {});

/// Catalog front end: builds a derived scenario by name — "drift",
/// "flash-crowd" or "multi-tenant" — with default configs at `seed`.
/// Throws std::invalid_argument for unknown names (listing the catalog).
[[nodiscard]] trace::Trace make_derived_scenario(const trace::Trace& base,
                                                 std::string_view name,
                                                 std::uint64_t seed = 42);

/// Names accepted by make_derived_scenario.
[[nodiscard]] std::vector<std::string_view> derived_scenario_names();

}  // namespace pulse::exp
