#pragma once
// Shared experiment scenario: the model zoo plus the Azure-like workload,
// built once per bench binary so every experiment runs on the same
// substrate the paper's evaluation does (12 functions, two weeks, Table IV
// models, injected invocation peaks).

#include <cstdint>

#include "models/zoo.hpp"
#include "trace/workload.hpp"

namespace pulse::exp {

struct ScenarioConfig {
  std::size_t function_count = 12;
  /// Days of trace. The paper replays 14; benches default to 7 to keep a
  /// full multi-policy ensemble sweep in the minutes range on one core
  /// (results are shape-stable from ~4 days up).
  trace::Minute days = 7;
  std::uint64_t seed = 42;
  std::size_t global_peaks = 2;
  double peak_intensity = 6.0;
};

struct Scenario {
  models::ModelZoo zoo;
  trace::Workload workload;
  ScenarioConfig config;
};

/// Builds the default scenario (builtin zoo + Azure-like workload).
[[nodiscard]] Scenario make_scenario(const ScenarioConfig& config = {});

/// Ensemble size used by the benches. The paper runs 1000; we default to a
/// smaller ensemble sized for a single-core run and allow override through
/// the PULSE_BENCH_RUNS environment variable.
[[nodiscard]] std::size_t bench_ensemble_runs(std::size_t default_runs = 60);

/// Trace days used by benches, overridable via PULSE_BENCH_DAYS.
[[nodiscard]] trace::Minute bench_trace_days(trace::Minute default_days = 7);

}  // namespace pulse::exp
