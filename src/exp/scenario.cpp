#include "exp/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace pulse::exp {

namespace {

long env_long(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  try {
    return std::stol(raw);
  } catch (...) {
    return fallback;
  }
}

// Hash-stream ids separating the derived-scenario randomness purposes.
constexpr std::uint64_t kStreamDriftRound = 101;
constexpr std::uint64_t kStreamCrowdCenter = 102;
constexpr std::uint64_t kStreamCrowdMember = 103;
constexpr std::uint64_t kStreamCrowdRound = 104;
constexpr std::uint64_t kStreamCrowdSurge = 105;
constexpr std::uint64_t kStreamTenantRound = 106;

// Deterministic stochastic rounding: integer part always lands, the
// fractional part becomes one extra invocation with matching probability,
// decided by a hash of the cell coordinates so evaluation order is
// irrelevant. Exact integers pass through untouched.
std::uint32_t stochastic_round(double expected, std::uint64_t seed,
                               std::uint64_t stream, std::uint64_t a,
                               std::uint64_t b) {
  if (expected <= 0.0) return 0;
  constexpr double kMax = static_cast<double>(std::numeric_limits<std::uint32_t>::max());
  if (expected >= kMax) return std::numeric_limits<std::uint32_t>::max();
  const double floor_part = std::floor(expected);
  auto n = static_cast<std::uint32_t>(floor_part);
  const double frac = expected - floor_part;
  if (frac > 0.0 && util::hash_uniform(seed, stream, a, b) < frac) ++n;
  return n;
}

}  // namespace

Scenario make_scenario(const ScenarioConfig& config) {
  Scenario s;
  s.config = config;
  s.zoo = models::ModelZoo::builtin();

  trace::WorkloadConfig w;
  w.function_count = config.function_count;
  w.duration = config.days * trace::kMinutesPerDay;
  w.seed = config.seed;
  w.global_peaks = config.global_peaks;
  w.peak_intensity = config.peak_intensity;
  s.workload = trace::build_azure_like_workload(w);
  return s;
}

std::size_t bench_ensemble_runs(std::size_t default_runs) {
  const long v = env_long("PULSE_BENCH_RUNS", static_cast<long>(default_runs));
  return v > 0 ? static_cast<std::size_t>(v) : default_runs;
}

trace::Minute bench_trace_days(trace::Minute default_days) {
  const long v = env_long("PULSE_BENCH_DAYS", static_cast<long>(default_days));
  return v > 0 ? static_cast<trace::Minute>(v) : default_days;
}

trace::Trace apply_pattern_drift(const trace::Trace& base,
                                 const PatternDriftConfig& config) {
  const std::size_t functions = base.function_count();
  const trace::Minute duration = base.duration();
  trace::Trace out(functions, duration);
  for (trace::FunctionId f = 0; f < functions; ++f) {
    out.set_function_name(f, base.function_name(f));
  }

  constexpr trace::Minute day = trace::kMinutesPerDay;
  for (trace::FunctionId f = 0; f < functions; ++f) {
    for (trace::Minute t = 0; t < duration; ++t) {
      const trace::Minute d = t / day;
      const trace::Minute m = t % day;
      const auto shift = static_cast<trace::Minute>(
          std::llround(config.phase_drift_minutes_per_day * static_cast<double>(d)));
      const trace::Minute src_m = ((m - shift) % day + day) % day;
      const std::uint32_t src = base.count(f, d * day + src_m);
      if (src == 0) continue;
      const double scale =
          std::pow(1.0 + config.amplitude_drift_per_day, static_cast<double>(d));
      const std::uint32_t c = stochastic_round(
          static_cast<double>(src) * scale, config.seed, kStreamDriftRound, f,
          static_cast<std::uint64_t>(t));
      if (c > 0) out.set_count(f, t, c);
    }
  }
  return out;
}

std::vector<trace::Minute> flash_crowd_minutes(const FlashCrowdConfig& config,
                                               trace::Minute duration) {
  std::vector<trace::Minute> centers;
  const trace::Minute margin = config.ramp + config.hold;
  const trace::Minute span = duration - 2 * margin;
  if (span <= 0 || config.crowds == 0) return centers;
  centers.reserve(config.crowds);
  for (std::size_t k = 0; k < config.crowds; ++k) {
    const double u = util::hash_uniform(config.seed, kStreamCrowdCenter, k, 0);
    centers.push_back(margin +
                      static_cast<trace::Minute>(u * static_cast<double>(span)));
  }
  std::sort(centers.begin(), centers.end());
  return centers;
}

trace::Trace inject_flash_crowds(const trace::Trace& base,
                                 const FlashCrowdConfig& config) {
  const std::size_t functions = base.function_count();
  const trace::Minute duration = base.duration();
  const std::vector<trace::Minute> centers = flash_crowd_minutes(config, duration);

  trace::Trace out(functions, duration);
  for (trace::FunctionId f = 0; f < functions; ++f) {
    out.set_function_name(f, base.function_name(f));
  }

  // Envelope of crowd k at minute t: 1 on [center, center + hold), linear
  // ramps of `ramp` minutes on both sides, 0 elsewhere.
  const auto envelope = [&](trace::Minute center, trace::Minute t) -> double {
    if (config.ramp <= 0) return (t >= center && t < center + config.hold) ? 1.0 : 0.0;
    if (t < center) {
      const trace::Minute lead = center - t;
      if (lead >= config.ramp) return 0.0;
      return 1.0 - static_cast<double>(lead) / static_cast<double>(config.ramp);
    }
    if (t < center + config.hold) return 1.0;
    const trace::Minute trail = t - (center + config.hold);
    if (trail >= config.ramp) return 0.0;
    return 1.0 - static_cast<double>(trail) / static_cast<double>(config.ramp);
  };

  for (trace::FunctionId f = 0; f < functions; ++f) {
    for (trace::Minute t = 0; t < duration; ++t) {
      const std::uint32_t src = base.count(f, t);
      double e = 0.0;
      for (std::size_t k = 0; k < centers.size(); ++k) {
        if (util::hash_uniform(config.seed, kStreamCrowdMember, k, f) >=
            config.participation) {
          continue;
        }
        e = std::max(e, envelope(centers[k], t));
        if (e >= 1.0) break;
      }
      if (e <= 0.0) {
        if (src > 0) out.set_count(f, t, src);
        continue;
      }
      const double factor = 1.0 + (config.multiplier - 1.0) * e;
      std::uint32_t c = stochastic_round(static_cast<double>(src) * factor,
                                         config.seed, kStreamCrowdRound, f,
                                         static_cast<std::uint64_t>(t));
      const double surge = config.surge_rate * e;
      if (surge > 0.0) {
        util::Pcg32 rng(util::hash_u64(config.seed, kStreamCrowdSurge, f,
                                       static_cast<std::uint64_t>(t)));
        c += static_cast<std::uint32_t>(util::poisson(rng, surge));
      }
      if (c > 0) out.set_count(f, t, c);
    }
  }
  return out;
}

trace::Trace compose_multi_tenant(const trace::Trace& base,
                                  const MultiTenantConfig& config) {
  const std::size_t functions = base.function_count();
  const trace::Minute duration = base.duration();
  const std::size_t tenants = std::max<std::size_t>(config.tenants, 1);

  trace::Trace out(tenants * functions, duration);
  const auto in_burst = [&](trace::Minute t) {
    return config.burst_every > 0 && (t % config.burst_every) < config.burst_length;
  };

  for (std::size_t i = 0; i < tenants; ++i) {
    const bool aggressor = tenants > 1 && i == tenants - 1;
    const auto rotation = static_cast<trace::Minute>(i) * config.phase_stagger;
    for (trace::FunctionId f = 0; f < functions; ++f) {
      const trace::FunctionId g = i * functions + f;
      out.set_function_name(g, "t" + std::to_string(i) + "/" + base.function_name(f));
      for (trace::Minute t = 0; t < duration; ++t) {
        const trace::Minute src_t =
            duration > 0 ? ((t - rotation) % duration + duration) % duration : 0;
        const std::uint32_t src = base.count(f, src_t);
        if (src == 0) continue;
        double scale = config.load_scale;
        if (aggressor && in_burst(t)) scale *= config.aggressor_scale;
        const std::uint32_t c =
            stochastic_round(static_cast<double>(src) * scale, config.seed,
                             kStreamTenantRound, g, static_cast<std::uint64_t>(t));
        if (c > 0) out.set_count(g, t, c);
      }
    }
  }
  return out;
}

trace::Trace make_derived_scenario(const trace::Trace& base, std::string_view name,
                                   std::uint64_t seed) {
  if (name == "drift") {
    PatternDriftConfig c;
    c.seed = seed;
    return apply_pattern_drift(base, c);
  }
  if (name == "flash-crowd") {
    FlashCrowdConfig c;
    c.seed = seed;
    return inject_flash_crowds(base, c);
  }
  if (name == "multi-tenant") {
    MultiTenantConfig c;
    c.seed = seed;
    return compose_multi_tenant(base, c);
  }
  std::string known;
  for (const std::string_view n : derived_scenario_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown derived scenario '" + std::string(name) +
                              "' (known: " + known + ")");
}

std::vector<std::string_view> derived_scenario_names() {
  return {"drift", "flash-crowd", "multi-tenant"};
}

}  // namespace pulse::exp
