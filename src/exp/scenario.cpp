#include "exp/scenario.hpp"

#include <cstdlib>
#include <string>

namespace pulse::exp {

namespace {

long env_long(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  try {
    return std::stol(raw);
  } catch (...) {
    return fallback;
  }
}

}  // namespace

Scenario make_scenario(const ScenarioConfig& config) {
  Scenario s;
  s.config = config;
  s.zoo = models::ModelZoo::builtin();

  trace::WorkloadConfig w;
  w.function_count = config.function_count;
  w.duration = config.days * trace::kMinutesPerDay;
  w.seed = config.seed;
  w.global_peaks = config.global_peaks;
  w.peak_intensity = config.peak_intensity;
  s.workload = trace::build_azure_like_workload(w);
  return s;
}

std::size_t bench_ensemble_runs(std::size_t default_runs) {
  const long v = env_long("PULSE_BENCH_RUNS", static_cast<long>(default_runs));
  return v > 0 ? static_cast<std::size_t>(v) : default_runs;
}

trace::Minute bench_trace_days(trace::Minute default_days) {
  const long v = env_long("PULSE_BENCH_DAYS", static_cast<long>(default_days));
  return v > 0 ? static_cast<trace::Minute>(v) : default_days;
}

}  // namespace pulse::exp
