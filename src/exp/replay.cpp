#include "exp/replay.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "obs/trace_sink.hpp"

namespace pulse::exp {

namespace {

/// Position just past `"key":` in `line`, or npos.
std::size_t after_key(std::string_view line, std::string_view key) {
  std::string pattern;
  pattern.reserve(key.size() + 3);
  pattern += '"';
  pattern += key;
  pattern += "\":";
  const std::size_t at = line.find(pattern);
  return at == std::string_view::npos ? std::string_view::npos : at + pattern.size();
}

/// Parses the number starting at `pos` (runs to the next ',' or '}').
/// strtod/strtoll need a NUL-terminated buffer; numbers in this schema are
/// at most 24 chars (%.17g), so a stack copy is enough.
bool parse_number(std::string_view line, std::size_t pos, double& out) {
  if (pos >= line.size()) return false;
  char buf[32];
  std::size_t n = 0;
  while (pos < line.size() && n + 1 < sizeof buf && line[pos] != ',' && line[pos] != '}') {
    buf[n++] = line[pos++];
  }
  buf[n] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end != buf;
}

}  // namespace

bool parse_event_jsonl(std::string_view line, obs::TraceEvent& out, std::string* detail) {
  out = obs::TraceEvent{};

  // type: required, must name a known EventType.
  std::size_t pos = after_key(line, "type");
  if (pos == std::string_view::npos || pos >= line.size() || line[pos] != '"') return false;
  const std::size_t type_end = line.find('"', pos + 1);
  if (type_end == std::string_view::npos) return false;
  const std::string_view type_name = line.substr(pos + 1, type_end - pos - 1);
  bool known = false;
  for (std::size_t i = 0; i < obs::kEventTypeCount; ++i) {
    const auto type = static_cast<obs::EventType>(i);
    if (type_name == obs::to_string(type)) {
      out.type = type;
      known = true;
      break;
    }
  }
  if (!known) return false;

  // minute and value: required numerics.
  double minute = 0.0;
  pos = after_key(line, "minute");
  if (pos == std::string_view::npos || !parse_number(line, pos, minute)) return false;
  out.minute = static_cast<trace::Minute>(minute);
  pos = after_key(line, "value");
  if (pos == std::string_view::npos || !parse_number(line, pos, out.value)) return false;

  // function and variant: optional (the writer omits kNoFunction / -1).
  double number = 0.0;
  pos = after_key(line, "function");
  if (pos != std::string_view::npos && parse_number(line, pos, number)) {
    out.function = static_cast<trace::FunctionId>(number);
  }
  pos = after_key(line, "variant");
  if (pos != std::string_view::npos && parse_number(line, pos, number)) {
    out.variant = static_cast<std::int32_t>(number);
  }

  if (detail != nullptr) {
    detail->clear();
    pos = after_key(line, "detail");
    if (pos != std::string_view::npos && pos < line.size() && line[pos] == '"') {
      const std::size_t end = line.find('"', pos + 1);
      if (end != std::string_view::npos) {
        detail->assign(line.substr(pos + 1, end - pos - 1));
      }
    }
  }
  return true;
}

void replay_event(ReplayResult& result, const obs::TraceEvent& event) {
  if (result.counts_by_type.empty()) result.counts_by_type.assign(obs::kEventTypeCount, 0);
  ++result.events;
  ++result.counts_by_type[static_cast<std::size_t>(event.type)];

  if (event.minute >= result.duration) {
    result.duration = event.minute + 1;
    const auto d = static_cast<std::size_t>(result.duration);
    result.memory_mb.resize(d, 0.0);
    result.alive_containers.resize(d, 0);
    result.cold_starts_per_minute.resize(d, 0);
  }
  const auto t = static_cast<std::size_t>(event.minute);

  switch (event.type) {
    case obs::EventType::kMinuteSample:
      result.memory_mb[t] = event.value;
      result.alive_containers[t] =
          event.variant >= 0 ? static_cast<std::uint64_t>(event.variant) : 0;
      ++result.minute_samples;
      break;
    case obs::EventType::kColdStart:
      ++result.cold_starts_per_minute[t];
      break;
    default:
      break;
  }
}

double ReplayResult::total_keepalive_cost_usd(const sim::CostModel& cost) const noexcept {
  // Same accumulation the engine performs: one minute of keep-alive at each
  // minute's resident MB, summed in minute order — bit-identical to
  // RunResult::total_keepalive_cost_usd when every minute carried a sample.
  double total = 0.0;
  for (const double mb : memory_mb) total += cost.keepalive_cost_usd(mb, 1.0);
  return total;
}

double ReplayResult::peak_memory_mb() const noexcept {
  double peak = 0.0;
  for (const double mb : memory_mb) peak = std::max(peak, mb);
  return peak;
}

ReplayResult replay_events_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw std::runtime_error("replay_events_file: cannot open " + path);
  }
  ReplayResult result;
  result.counts_by_type.assign(obs::kEventTypeCount, 0);
  std::string line;
  obs::TraceEvent event;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (parse_event_jsonl(line, event)) {
      replay_event(result, event);
    } else {
      ++result.skipped_lines;
    }
  }
  return result;
}

}  // namespace pulse::exp
