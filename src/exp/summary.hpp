#pragma once
// Aggregation and paper-row formatting shared by the bench binaries.

#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "obs/observer.hpp"
#include "sim/ensemble.hpp"

namespace pulse::exp {

/// The three paper metrics (plus diagnostics) for one policy.
struct PolicySummary {
  std::string policy;
  double service_time_s = 0.0;
  double keepalive_cost_usd = 0.0;
  double accuracy_pct = 0.0;
  double warm_fraction = 0.0;
  double overhead_s = 0.0;
  std::size_t runs = 0;

  /// Observability counters/gauges/histograms merged over every run. Empty
  /// unless the ensemble ran with a MetricsRegistry attached (see
  /// run_policy_ensemble's `observer` parameter).
  obs::MetricsSnapshot metrics;
};

/// Collapses an ensemble into a summary (per-run totals averaged, exactly
/// the paper's aggregation).
[[nodiscard]] PolicySummary summarize(std::string policy, const sim::EnsembleResult& ensemble);

/// Runs the named policy over the scenario's trace as an ensemble and
/// summarizes it. Passing a non-disabled `observer` attaches it to every
/// run (per-worker registries, merged after the pool joins — see
/// run_ensemble); the merged snapshot lands in PolicySummary::metrics.
[[nodiscard]] PolicySummary run_policy_ensemble(const Scenario& scenario,
                                                const std::string& policy,
                                                std::size_t runs, std::uint64_t seed = 7,
                                                bool measure_overhead = false,
                                                const obs::Observer& observer = {});

/// Single deterministic run (round-robin deployment) with per-minute series
/// recorded — used by the figure benches that plot time series.
[[nodiscard]] sim::RunResult run_policy_single(const Scenario& scenario,
                                               const std::string& policy,
                                               std::uint64_t seed = 7);

/// Figure 6(a)-style improvement row of `ours` relative to `baseline`:
/// positive service-time/cost values mean we are cheaper/faster; the
/// accuracy value is the (usually slightly negative) relative change.
struct ImprovementRow {
  std::string policy;
  double service_time_pct = 0.0;
  double keepalive_cost_pct = 0.0;
  double accuracy_pct = 0.0;
};

[[nodiscard]] ImprovementRow improvement_over(const PolicySummary& baseline,
                                              const PolicySummary& ours);

}  // namespace pulse::exp
