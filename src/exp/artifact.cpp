#include "exp/artifact.hpp"

#include <fstream>
#include <stdexcept>

namespace pulse::exp {

namespace {

void write_lines(const std::filesystem::path& path, const sim::EnsembleResult& ensemble,
                 double (*metric)(const sim::RunResult&)) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open artifact file: " + path.string());
  os.precision(10);
  for (const auto& run : ensemble.runs) os << metric(run) << '\n';
  if (!os) throw std::runtime_error("artifact write failed: " + path.string());
}

}  // namespace

ArtifactFiles write_artifact_files(const std::filesystem::path& directory,
                                   const std::string& technique,
                                   const sim::EnsembleResult& ensemble) {
  std::filesystem::create_directories(directory);
  const std::string suffix = "_sliding_with_memory_constraint_T1.txt";

  ArtifactFiles files;
  files.service_time = directory / (technique + "_servicetime" + suffix);
  files.keepalive_cost = directory / (technique + "_keepalive_cost" + suffix);
  files.accuracy = directory / (technique + "_accuracy" + suffix);

  write_lines(files.service_time, ensemble,
              [](const sim::RunResult& r) { return r.total_service_time_s; });
  write_lines(files.keepalive_cost, ensemble,
              [](const sim::RunResult& r) { return r.total_keepalive_cost_usd; });
  write_lines(files.accuracy, ensemble,
              [](const sim::RunResult& r) { return r.average_accuracy_pct(); });
  return files;
}

std::vector<double> read_artifact_metric(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open artifact file: " + path.string());
  std::vector<double> values;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    try {
      values.push_back(std::stod(line));
    } catch (const std::exception&) {
      throw std::runtime_error("malformed artifact line in " + path.string() + ": " + line);
    }
  }
  return values;
}

}  // namespace pulse::exp
