#pragma once
// Artifact-parity result files.
//
// The paper's Zenodo artifact (A1) stores one text file per technique and
// metric, one line per simulation run:
//   technique_servicetime_sliding_with_memory_constraint_T1.txt
//   technique_keepalive_cost_sliding_with_memory_constraint_T1.txt
//   technique_accuracy_sliding_with_memory_constraint_T1.txt
// and the authors average across runs to build the plots. This module
// writes the same layout from an EnsembleResult, so downstream scripts
// written against the original artifact work against this reproduction.

#include <filesystem>
#include <string>

#include "sim/ensemble.hpp"

namespace pulse::exp {

struct ArtifactFiles {
  std::filesystem::path service_time;
  std::filesystem::path keepalive_cost;
  std::filesystem::path accuracy;
};

/// Writes the three per-run metric files for `technique` into `directory`
/// (created if needed) and returns their paths. One line per run: the
/// run's total service time (s), total keep-alive cost (USD), and average
/// accuracy (%), in run order.
ArtifactFiles write_artifact_files(const std::filesystem::path& directory,
                                   const std::string& technique,
                                   const sim::EnsembleResult& ensemble);

/// Reads one metric file back (one double per line). Throws
/// std::runtime_error on I/O or parse failure.
[[nodiscard]] std::vector<double> read_artifact_metric(const std::filesystem::path& path);

}  // namespace pulse::exp
