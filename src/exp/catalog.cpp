#include "exp/catalog.hpp"

#include <functional>
#include <stdexcept>

#include "trace/patterns.hpp"

namespace pulse::exp {

namespace {

/// Builds a uniform workload where every function uses `make(slot)`.
trace::Workload build_uniform(const ScenarioConfig& config,
                              const std::function<trace::PatternPtr(std::size_t, util::Pcg32&)>&
                                  make,
                              std::size_t peaks, double peak_intensity) {
  trace::Workload w;
  w.trace = trace::Trace(config.function_count, config.days * trace::kMinutesPerDay);
  util::Pcg32 param_rng(config.seed, /*stream=*/0xca7a10);
  for (trace::FunctionId f = 0; f < config.function_count; ++f) {
    trace::PatternPtr pattern = make(f, param_rng);
    util::Pcg32 fn_rng(config.seed + 5000 + f, /*stream=*/f + 1);
    pattern->generate(w.trace, f, fn_rng);
    w.trace.set_function_name(f, "fn" + std::to_string(f) + "_" + pattern->label());
    w.functions.push_back(trace::FunctionSpec{w.trace.function_name(f), pattern->label()});
  }
  for (std::size_t p = 0; p < peaks; ++p) {
    const trace::Minute at = w.trace.duration() * static_cast<trace::Minute>(p + 1) /
                             static_cast<trace::Minute>(peaks + 1);
    util::Pcg32 peak_rng(config.seed + 99 + p, /*stream=*/300 + p);
    trace::inject_global_peak(w.trace, at, 3, peak_intensity, peak_rng);
    w.peak_minutes.push_back(at);
  }
  return w;
}

}  // namespace

std::vector<CatalogEntry> scenario_catalog() {
  return {
      {"azure-like", "mixed pattern archetypes with injected peaks (the default)"},
      {"steady", "dispersed Poisson arrivals; warm-friendly, offset-unpredictable"},
      {"periodic", "clockwork inter-arrivals; PULSE's best case"},
      {"bursty", "idle floors punctuated by coordinated spikes"},
      {"sparse", "long idle gaps; keep-alive is mostly waste"},
  };
}

Scenario make_catalog_scenario(std::string_view name, const ScenarioConfig& base) {
  Scenario s;
  s.config = base;
  s.zoo = models::ModelZoo::builtin();

  if (name == "azure-like") {
    return make_scenario(base);
  }
  if (name == "steady") {
    s.workload = build_uniform(
        base,
        [](std::size_t, util::Pcg32& rng) {
          return trace::steady_poisson(rng.uniform(0.25, 0.9));
        },
        base.global_peaks, base.peak_intensity);
    return s;
  }
  if (name == "periodic") {
    s.workload = build_uniform(
        base,
        [](std::size_t slot, util::Pcg32& rng) {
          const auto period = static_cast<trace::Minute>(2 + slot % 9);
          return trace::periodic(period, static_cast<trace::Minute>(rng.bounded(3)), 0, 0.02);
        },
        base.global_peaks, base.peak_intensity);
    return s;
  }
  if (name == "bursty") {
    s.workload = build_uniform(
        base,
        [](std::size_t, util::Pcg32& rng) {
          return trace::bursty(rng.uniform(0.01, 0.05), 0.004,
                               4 + static_cast<trace::Minute>(rng.bounded(6)),
                               rng.uniform(3.0, 7.0));
        },
        base.global_peaks * 2, base.peak_intensity * 1.5);
    return s;
  }
  if (name == "sparse") {
    s.workload = build_uniform(
        base,
        [](std::size_t slot, util::Pcg32& rng) {
          if (slot % 2 == 0) return trace::steady_poisson(rng.uniform(0.01, 0.05));
          return trace::heavy_tail(rng.uniform(8.0, 20.0), 1.3);
        },
        /*peaks=*/0, base.peak_intensity);
    return s;
  }
  throw std::invalid_argument("make_catalog_scenario: unknown scenario '" +
                              std::string(name) + "'");
}

}  // namespace pulse::exp
