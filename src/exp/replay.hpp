#pragma once
// JSONL event replayer: reconstructs a run's per-minute cost and cold-start
// curves from a JsonlFileSink event stream, without re-running the
// simulation.
//
// The engine's kMinuteSample events (EngineConfig::emit_minute_samples)
// anchor the keep-alive memory curve — one sample per simulated minute with
// the end-of-minute resident MB and alive container count. Everything else
// (cold starts, evictions, faults) is counted from the typed events
// directly. Costing the memory curve through the same sim::CostModel the
// run used reproduces RunResult::total_keepalive_cost_usd exactly: the
// engine accrues cost as memory_mb(t) * 1 minute, which is precisely what
// the samples carry, and %.17g round-trips doubles bit-exactly.
//
// The parser accepts exactly the schema obs::format_event_jsonl emits. A
// malformed or unknown-type line is skipped and counted, never fatal — the
// replayer is a forensic tool and partial streams (truncated files, sampled
// runs) are expected inputs.

#include <string>
#include <string_view>
#include <vector>

#include "obs/event.hpp"
#include "sim/cost_model.hpp"

namespace pulse::exp {

/// Parses one JSONL line in the obs::format_event_jsonl schema into `out`.
/// Returns false (leaving `out` unspecified) when the line is malformed or
/// names an unknown event type. `out.detail` is always left pointing at a
/// static empty string — TraceEvent's detail contract requires static
/// storage; pass `detail` to receive the parsed string instead.
[[nodiscard]] bool parse_event_jsonl(std::string_view line, obs::TraceEvent& out,
                                     std::string* detail = nullptr);

/// A run reconstructed from its event stream.
struct ReplayResult {
  /// Minutes covered: max event minute + 1 (0 for an empty stream).
  trace::Minute duration = 0;

  /// Events parsed / lines skipped as malformed or unknown.
  std::uint64_t events = 0;
  std::uint64_t skipped_lines = 0;

  /// Per-type event counts, indexed by EventType (size kEventTypeCount).
  std::vector<std::uint64_t> counts_by_type;

  /// Per-minute keep-alive memory (MB) and alive container count from
  /// kMinuteSample events; 0 at minutes without a sample. Size = duration.
  std::vector<double> memory_mb;
  std::vector<std::uint64_t> alive_containers;
  std::uint64_t minute_samples = 0;

  /// Per-minute cold-start counts (one kColdStart event = one cold start,
  /// matching RunResult::cold_starts). Size = duration.
  std::vector<std::uint64_t> cold_starts_per_minute;

  [[nodiscard]] std::uint64_t count(obs::EventType type) const noexcept {
    const auto i = static_cast<std::size_t>(type);
    return i < counts_by_type.size() ? counts_by_type[i] : 0;
  }

  [[nodiscard]] std::uint64_t total_cold_starts() const noexcept {
    return count(obs::EventType::kColdStart);
  }

  /// Cost of the reconstructed memory curve: sum over minutes of one
  /// minute's keep-alive at that minute's resident MB. Equals the run's
  /// total_keepalive_cost_usd when every minute carried a sample and `cost`
  /// matches the run's cost model.
  [[nodiscard]] double total_keepalive_cost_usd(
      const sim::CostModel& cost = sim::CostModel()) const noexcept;

  /// Peak of the reconstructed memory curve (0 for an empty stream).
  [[nodiscard]] double peak_memory_mb() const noexcept;
};

/// Feeds one parsed event into the reconstruction (grows the curves as the
/// covered duration extends). Exposed so callers with events already in
/// memory (tests, RingBufferSink::events()) can replay without a file.
void replay_event(ReplayResult& result, const obs::TraceEvent& event);

/// Replays a JsonlFileSink output file. Throws std::runtime_error when the
/// file cannot be opened; malformed lines are counted, not fatal.
[[nodiscard]] ReplayResult replay_events_file(const std::string& path);

}  // namespace pulse::exp
