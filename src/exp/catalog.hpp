#pragma once
// Named workload scenario catalog.
//
// The paper evaluates on one production trace; a reproduction should show
// how sensitive the results are to the workload's character. The catalog
// defines qualitatively distinct 12-function workloads — each stressing a
// different aspect of keep-alive policy design — under stable names that
// benches, tests and the examples can share.

#include <string>
#include <string_view>
#include <vector>

#include "exp/scenario.hpp"

namespace pulse::exp {

struct CatalogEntry {
  std::string name;
  std::string description;
};

/// The available scenario names:
///   "azure-like"  the default mixed workload (the paper's setting)
///   "steady"      all functions busy with dispersed arrivals — easy to keep
///                 warm, hard to predict offsets
///   "periodic"    clockwork functions — PULSE's best case
///   "bursty"      idle floors with coordinated spikes — the peak-flattening
///                 stress test
///   "sparse"      low-rate functions with long gaps — keep-alive is mostly
///                 waste, cold starts dominate
[[nodiscard]] std::vector<CatalogEntry> scenario_catalog();

/// Builds a catalog scenario by name (days/seed from `base`). Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] Scenario make_catalog_scenario(std::string_view name,
                                             const ScenarioConfig& base = {});

}  // namespace pulse::exp
