#include "platform/platform.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace pulse::platform {

namespace {

struct Container {
  std::size_t variant = 0;
  double born_s = 0.0;      // creation time, seconds
  double busy_until_s = 0;  // <= now means idle
};

/// Sampled per-minute memory record exposed to policies' end_of_minute.
class SampledHistory final : public sim::MemoryHistory {
 public:
  void push(double v) { values_.push_back(v); }
  [[nodiscard]] double memory_at(trace::Minute t) const override {
    if (t < 0 || static_cast<std::size_t>(t) >= values_.size()) return 0.0;
    return values_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] trace::Minute now() const override {
    return static_cast<trace::Minute>(values_.size());
  }

 private:
  std::vector<double> values_;
};

}  // namespace

PlatformSimulator::PlatformSimulator(const sim::Deployment& deployment,
                                     const trace::Trace& trace, PlatformConfig config)
    : deployment_(&deployment), trace_(&trace), config_(config) {
  if (deployment.function_count() != trace.function_count()) {
    throw std::invalid_argument("PlatformSimulator: deployment/trace function count mismatch");
  }
}

PlatformResult PlatformSimulator::run(sim::KeepAlivePolicy& policy) {
  const trace::Trace& tr = *trace_;
  const sim::Deployment& dep = *deployment_;
  const trace::Minute duration = tr.duration();

  PlatformResult result;
  sim::KeepAliveSchedule schedule(dep, duration);
  SampledHistory history;
  util::Pcg32 rng(config_.seed, /*stream=*/0x9a7f02);

  std::vector<std::vector<Container>> pool(tr.function_count());
  std::size_t live_containers = 0;

  auto memory_of = [&](const Container& c, trace::FunctionId f) {
    return dep.family_of(f).variant(c.variant).memory_mb;
  };

  auto retire = [&](trace::FunctionId f, std::size_t index, double at_s) {
    const Container& c = pool[f][index];
    const double minutes = std::max(0.0, at_s - c.born_s) / 60.0;
    result.total_cost_usd += config_.cost_model.keepalive_cost_usd(memory_of(c, f), minutes);
    pool[f][index] = pool[f].back();
    pool[f].pop_back();
    --live_containers;
  };

  auto spawn = [&](trace::FunctionId f, std::size_t variant, double at_s,
                   double busy_until_s) -> Container& {
    pool[f].push_back(Container{variant, at_s, busy_until_s});
    ++result.containers_created;
    ++live_containers;
    result.peak_containers = std::max(result.peak_containers, live_containers);
    return pool[f].back();
  };

  auto total_memory = [&] {
    double mem = 0.0;
    for (trace::FunctionId f = 0; f < pool.size(); ++f) {
      for (const Container& c : pool[f]) mem += memory_of(c, f);
    }
    return mem;
  };

  policy.initialize(dep, tr, schedule);

  for (trace::Minute m = 0; m < duration; ++m) {
    const double minute_start_s = static_cast<double>(m) * kSecondsPerMinute;

    // --- reconcile the warm pool with the keep-alive schedule ---
    for (trace::FunctionId f = 0; f < tr.function_count(); ++f) {
      const int scheduled = schedule.variant_at(f, m);
      // Reap idle containers that are unscheduled or of the wrong variant;
      // keep at most one matching idle container.
      bool kept_one = false;
      for (std::size_t i = pool[f].size(); i-- > 0;) {
        Container& c = pool[f][i];
        if (c.busy_until_s > minute_start_s) continue;  // executing: cannot kill
        const bool matches = scheduled != sim::kNoVariant &&
                             c.variant == static_cast<std::size_t>(scheduled);
        if (matches && !kept_one) {
          kept_one = true;
          continue;
        }
        retire(f, i, minute_start_s);
      }
      // Pre-warm the scheduled variant when no live container provides it.
      if (scheduled != sim::kNoVariant) {
        const auto v = static_cast<std::size_t>(scheduled);
        const bool present = std::any_of(pool[f].begin(), pool[f].end(),
                                         [&](const Container& c) { return c.variant == v; });
        if (!present) spawn(f, v, minute_start_s, minute_start_s);
      }
    }

    // --- serve this minute's invocations at second granularity ---
    for (trace::FunctionId f = 0; f < tr.function_count(); ++f) {
      const std::uint32_t count = tr.count(f, m);
      if (count == 0) continue;
      const models::ModelFamily& family = dep.family_of(f);

      for (std::uint32_t i = 0; i < count; ++i) {
        double arrival_s = minute_start_s;
        if (config_.spread_arrivals) {
          arrival_s += static_cast<double>(i) * kSecondsPerMinute /
                       static_cast<double>(count);
        }

        // Prefer an idle container (any variant the pool holds).
        Container* idle = nullptr;
        bool any_live = !pool[f].empty();
        for (Container& c : pool[f]) {
          if (c.busy_until_s <= arrival_s) {
            idle = &c;
            break;
          }
        }

        double service_s;
        std::size_t served_variant;
        if (idle != nullptr) {
          served_variant = idle->variant;
          const auto& variant = family.variant(served_variant);
          service_s = config_.deterministic_latency
                          ? models::LatencyModel::expected_service_time(variant, false)
                          : config_.latency.sample_service_time(variant, false, rng);
          idle->busy_until_s = arrival_s + service_s;
          ++result.warm_starts;
        } else {
          // Scale-out or fresh cold start.
          served_variant = any_live ? pool[f].front().variant
                                    : policy.cold_start_variant(f, m, dep);
          const auto& variant = family.variant(served_variant);
          service_s = config_.deterministic_latency
                          ? models::LatencyModel::expected_service_time(variant, true)
                          : config_.latency.sample_service_time(variant, true, rng);
          spawn(f, served_variant, arrival_s, arrival_s + service_s);
          ++result.cold_starts;
          if (any_live) ++result.scale_out_cold_starts;
        }

        result.total_service_time_s += service_s;
        result.accuracy_pct_sum += family.variant(served_variant).accuracy_pct;
        ++result.invocations;
      }

      policy.on_invocation(f, m, schedule);
    }

    policy.end_of_minute(m, schedule, history);

    const double mem = total_memory();
    history.push(mem);
    if (config_.record_series) result.memory_mb.push_back(mem);
  }

  // Flush the remaining containers' cost at the horizon.
  const double end_s = static_cast<double>(duration) * kSecondsPerMinute;
  for (trace::FunctionId f = 0; f < pool.size(); ++f) {
    for (std::size_t i = pool[f].size(); i-- > 0;) retire(f, i, end_s);
  }
  return result;
}

}  // namespace pulse::platform
