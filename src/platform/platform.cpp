#include "platform/platform.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace pulse::platform {

namespace {

struct Container {
  std::size_t variant = 0;
  double born_s = 0.0;      // creation time, seconds
  double busy_until_s = 0;  // <= now means idle
};

/// Sampled per-minute memory record exposed to policies' end_of_minute.
class SampledHistory final : public sim::MemoryHistory {
 public:
  void push(double v) { values_.push_back(v); }
  [[nodiscard]] double memory_at(trace::Minute t) const override {
    if (t < 0 || static_cast<std::size_t>(t) >= values_.size()) return 0.0;
    return values_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] trace::Minute now() const override {
    return static_cast<trace::Minute>(values_.size());
  }

 private:
  std::vector<double> values_;
};

/// Pcg32 stream for function f's latency jitter, hash-derived from the
/// function id (the FaultInjector trick applied to generator streams):
/// each function owns an independent stream, so adding or removing one
/// function never shifts another function's samples.
[[nodiscard]] std::uint64_t latency_stream(trace::FunctionId f) noexcept {
  std::uint64_t z = (static_cast<std::uint64_t>(f) + 0x9e3779b97f4a7c15ULL) ^ 0x9a7f02ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

PlatformSimulator::PlatformSimulator(const sim::Deployment& deployment,
                                     const trace::Trace& trace, PlatformConfig config)
    : deployment_(&deployment), trace_(&trace), config_(std::move(config)) {
  if (deployment.function_count() != trace.function_count()) {
    throw std::invalid_argument("PlatformSimulator: deployment/trace function count mismatch");
  }
}

PlatformResult PlatformSimulator::run(sim::KeepAlivePolicy& policy) {
  const trace::Trace& tr = *trace_;
  const sim::Deployment& dep = *deployment_;
  const trace::Minute duration = tr.duration();

  // Observability: all three handles are optional; `sink` is the only one
  // consulted on the per-second hot path, as a single null-check branch.
  const obs::Observer& obs = config_.observer;
  obs::TraceSink* const sink = obs.sink;
  const obs::PhaseTimer run_timer(obs.profiler, obs::Phase::kSimulate);
  policy.attach_observer(obs.any() ? &config_.observer : nullptr);

  PlatformResult result;
  sim::KeepAliveSchedule schedule(dep, duration);
  SampledHistory history;
  std::vector<util::Pcg32> latency_rng;
  latency_rng.reserve(tr.function_count());
  for (trace::FunctionId f = 0; f < tr.function_count(); ++f) {
    latency_rng.emplace_back(config_.seed, latency_stream(f));
  }
  // Same seed/stream as the minute engine's capacity-eviction generator:
  // with matching schedules the two layers draw identical victim sequences.
  util::Pcg32 eviction_rng(config_.seed, /*stream=*/0xeb1c7);
  std::vector<std::pair<trace::FunctionId, std::size_t>> kept_buffer;

  const fault::FaultInjector injector(config_.faults);
  const bool faults_on = injector.config().enabled();
  // The minute engine marks cold-started containers in the schedule (they
  // count toward keep-alive memory for the rest of the minute). The
  // platform's memory accounting runs on the pool instead, so it only
  // needs that mirroring when the schedule itself is consulted for
  // platform behaviour — fault injection or a capacity limit. Keeping it
  // off otherwise preserves bitwise identity with the pre-fault platform.
  const bool mirror_schedule = faults_on || config_.memory_capacity_mb > 0.0;

  std::vector<std::vector<Container>> pool(tr.function_count());
  std::size_t live_containers = 0;

  obs::HistogramHandle live_hist;  // resolved once; per-minute updates are pointer adds
  if (obs.metrics != nullptr) live_hist.bind(*obs.metrics, "platform.live_containers", 512);

  auto memory_of = [&](const Container& c, trace::FunctionId f) {
    return dep.family_of(f).variant(c.variant).memory_mb;
  };

  auto retire = [&](trace::FunctionId f, std::size_t index, double at_s) {
    const Container& c = pool[f][index];
    const double minutes = std::max(0.0, at_s - c.born_s) / 60.0;
    result.total_cost_usd += config_.cost_model.keepalive_cost_usd(memory_of(c, f), minutes);
    pool[f][index] = pool[f].back();
    pool[f].pop_back();
    --live_containers;
  };

  auto spawn = [&](trace::FunctionId f, std::size_t variant, double at_s,
                   double busy_until_s) {
    pool[f].push_back(Container{variant, at_s, busy_until_s});
    ++result.containers_created;
    ++live_containers;
    result.peak_containers = std::max(result.peak_containers, live_containers);
  };

  auto total_memory = [&] {
    double mem = 0.0;
    for (trace::FunctionId f = 0; f < pool.size(); ++f) {
      for (const Container& c : pool[f]) mem += memory_of(c, f);
    }
    return mem;
  };

  policy.initialize(dep, tr, schedule);

  for (trace::Minute m = 0; m < duration; ++m) {
    const double minute_start_s = static_cast<double>(m) * kSecondsPerMinute;
    const double minute_end_s = minute_start_s + kSecondsPerMinute;
    bool minute_degraded = false;

    // --- injected container crashes ---
    // Fire at the minute boundary, before reconciliation: the crashed
    // container's remaining keep-alive stretch is evicted from the
    // schedule, so the reconcile pass below reaps its warm container and
    // this minute's invocations (if any) go cold. Identical draw
    // coordinates to the minute engine.
    if (faults_on && injector.config().crash_rate > 0.0) {
      schedule.for_each_alive(m, [&](trace::FunctionId f, std::size_t variant) {
        if (injector.container_crashes(f, m)) {
          schedule.evict_from(f, m);
          ++result.faults.crash_evictions;
          minute_degraded = true;
          if (sink != nullptr) {
            sink->record({obs::EventType::kCrashEviction, m, f,
                          static_cast<std::int32_t>(variant), 1.0, ""});
          }
        }
      });
    }

    // --- reconcile the warm pool with the keep-alive schedule ---
    for (trace::FunctionId f = 0; f < tr.function_count(); ++f) {
      const int scheduled = schedule.variant_at(f, m);
      // Reap idle containers that are unscheduled or of the wrong variant;
      // keep at most one matching idle container.
      bool kept_one = false;
      for (std::size_t i = pool[f].size(); i-- > 0;) {
        Container& c = pool[f][i];
        if (c.busy_until_s > minute_start_s) continue;  // executing: cannot kill
        const bool matches = scheduled != sim::kNoVariant &&
                             c.variant == static_cast<std::size_t>(scheduled);
        if (matches && !kept_one) {
          kept_one = true;
          continue;
        }
        retire(f, i, minute_start_s);
      }
      // Pre-warm the scheduled variant when no live container provides it.
      // The fresh container pays its cold-start provisioning time: it only
      // turns warm (idle) once the variant's cold start completes, so an
      // arrival inside the provisioning window still scales out.
      if (scheduled != sim::kNoVariant) {
        const auto v = static_cast<std::size_t>(scheduled);
        const bool present = std::any_of(pool[f].begin(), pool[f].end(),
                                         [&](const Container& c) { return c.variant == v; });
        if (!present) {
          const double provision_s = dep.family_of(f).variant(v).cold_start_time_s;
          spawn(f, v, minute_start_s, minute_start_s + provision_s);
          ++result.prewarm_starts;
          if (sink != nullptr) {
            sink->record({obs::EventType::kPrewarm, m, f, scheduled, provision_s, ""});
          }
        }
      }
    }

    // --- serve this minute's invocations at second granularity ---
    for (trace::FunctionId f = 0; f < tr.function_count(); ++f) {
      const std::uint32_t count = tr.count(f, m);
      if (count == 0) continue;
      const models::ModelFamily& family = dep.family_of(f);
      util::Pcg32& rng = latency_rng[f];

      for (std::uint32_t i = 0; i < count; ++i) {
        double arrival_s = minute_start_s;
        if (config_.spread_arrivals) {
          arrival_s += static_cast<double>(i) * kSecondsPerMinute /
                       static_cast<double>(count);
        }

        // Prefer an idle container (any variant the pool holds).
        Container* idle = nullptr;
        const bool any_live = !pool[f].empty();
        for (Container& c : pool[f]) {
          if (c.busy_until_s <= arrival_s) {
            idle = &c;
            break;
          }
        }

        double service_s;
        std::size_t served_variant;
        bool cold;
        if (idle != nullptr) {
          cold = false;
          served_variant = idle->variant;
          const auto& variant = family.variant(served_variant);
          service_s = config_.deterministic_latency
                          ? models::LatencyModel::expected_service_time(variant, false)
                          : config_.latency.sample_service_time(variant, false, rng);
        } else {
          // Scale-out or fresh cold start: serve the variant the schedule
          // currently prescribes, not whatever container happens to sit at
          // the front of the pool (reap order made that a stale variant
          // after downgrades). With nothing scheduled, fall back to the
          // policy's cold-start choice — the minute engine's exact rule.
          cold = true;
          const int scheduled_now = schedule.variant_at(f, m);
          served_variant = scheduled_now != sim::kNoVariant
                               ? static_cast<std::size_t>(scheduled_now)
                               : policy.cold_start_variant(f, m, dep);
          const auto& variant = family.variant(served_variant);

          // Injected cold-start failures: the bounded retry loop shares
          // the minute engine's (f, m) draw coordinates, so every spawn
          // attempt of this minute sees the same outcome and a failed
          // minute fails all of its invocations on both layers.
          double cold_retry_penalty_s = 0.0;
          if (faults_on) {
            const fault::ColdStartOutcome cs = injector.cold_start(f, m);
            result.faults.retries += cs.retries;
            cold_retry_penalty_s = cs.retry_penalty_s;
            if (cs.retries > 0 || !cs.succeeded) minute_degraded = true;
            if (!cs.succeeded) {
              ++result.faults.failed_invocations;
              if (sink != nullptr) {
                sink->record({obs::EventType::kFault, m, f,
                              static_cast<std::int32_t>(served_variant), 1.0,
                              "cold_start_failure"});
              }
              continue;  // no container starts; the invocation is lost
            }
            if (sink != nullptr && cs.retries > 0) {
              sink->record({obs::EventType::kFault, m, f,
                            static_cast<std::int32_t>(served_variant),
                            static_cast<double>(cs.retries), "cold_start_retry"});
            }
          }

          service_s = config_.deterministic_latency
                          ? models::LatencyModel::expected_service_time(variant, true)
                          : config_.latency.sample_service_time(variant, true, rng);
          service_s += cold_retry_penalty_s;
          if (mirror_schedule && scheduled_now == sim::kNoVariant) {
            // The cold-started container exists for the rest of this
            // minute; the minute engine counts it toward keep-alive memory
            // at m, which the capacity/crash logic below consults.
            schedule.set(f, m, static_cast<int>(served_variant));
          }
        }

        const auto& variant = family.variant(served_variant);
        double accuracy_credit = variant.accuracy_pct;
        if (faults_on) {
          // Per-variant SLO: the client abandons at the deadline, so the
          // time is clipped there and no accuracy is delivered. The
          // container is freed at the deadline too.
          const double slo = injector.timeout_slo_s(
              models::LatencyModel::expected_service_time(variant, cold));
          if (slo > 0.0 && service_s > slo) {
            service_s = slo;
            accuracy_credit = 0.0;
            ++result.faults.timeouts;
            minute_degraded = true;
            if (sink != nullptr) {
              sink->record({obs::EventType::kFault, m, f,
                            static_cast<std::int32_t>(served_variant), slo, "slo_timeout"});
            }
          }
        }

        if (idle != nullptr) {
          idle->busy_until_s = arrival_s + service_s;
          ++result.warm_starts;
        } else {
          spawn(f, served_variant, arrival_s, arrival_s + service_s);
          ++result.cold_starts;
          if (any_live) ++result.scale_out_cold_starts;
        }
        if (sink != nullptr) {
          sink->record({cold ? obs::EventType::kColdStart : obs::EventType::kWarmStart, m,
                        f, static_cast<std::int32_t>(served_variant), 1.0, ""});
        }

        result.total_service_time_s += service_s;
        result.accuracy_pct_sum += accuracy_credit;
        ++result.invocations;
      }

      // The policy observes the arrival even when the platform failed to
      // serve it — predictors track demand, not fulfillment.
      policy.on_invocation(f, m, schedule);
    }

    policy.end_of_minute(m, schedule, history);

    // --- capacity pressure ---
    // Mirrors the minute engine: injected memory-pressure spikes tighten
    // the configured capacity; while the *schedule* exceeds it, random
    // kept containers are evicted (same seeded generator, so with matching
    // schedules the victim sequence is identical). The victim's idle
    // containers die with the schedule entry, charged as if minute m never
    // happened — exactly what evicting minute m from the schedule does to
    // the engine's cost.
    double capacity_mb = config_.memory_capacity_mb;
    if (faults_on) {
      capacity_mb = injector.effective_capacity_mb(capacity_mb, m);
      if (injector.under_memory_pressure(m)) minute_degraded = true;
    }
    if (capacity_mb > 0.0 && schedule.memory_exceeds(m, capacity_mb)) {
      if (sink != nullptr) {
        sink->record({obs::EventType::kCapacityPressure, m, obs::TraceEvent::kNoFunction,
                      -1, schedule.memory_at(m) - capacity_mb, ""});
      }
      schedule.kept_alive_at(m, kept_buffer);
      while (!kept_buffer.empty()) {
        const auto idx = eviction_rng.bounded(static_cast<std::uint32_t>(kept_buffer.size()));
        const auto victim = kept_buffer[static_cast<std::size_t>(idx)];
        schedule.evict_from(victim.first, m);
        kept_buffer.erase(kept_buffer.begin() + idx);
        ++result.faults.capacity_evictions;
        for (std::size_t i = pool[victim.first].size(); i-- > 0;) {
          if (pool[victim.first][i].busy_until_s <= minute_end_s) {
            retire(victim.first, i, minute_start_s);
          }
        }
        if (sink != nullptr) {
          sink->record({obs::EventType::kEviction, m, victim.first,
                        static_cast<std::int32_t>(victim.second), 1.0, "capacity"});
        }
        if (!schedule.memory_exceeds(m, capacity_mb)) break;
      }
    }
    if (minute_degraded) ++result.faults.degraded_minutes;

    const double mem = total_memory();
    history.push(mem);
    if (config_.record_series) result.memory_mb.push_back(mem);
    live_hist.record(live_containers);
  }

  // Flush the remaining containers' cost at the horizon.
  const double end_s = static_cast<double>(duration) * kSecondsPerMinute;
  for (trace::FunctionId f = 0; f < pool.size(); ++f) {
    for (std::size_t i = pool[f].size(); i-- > 0;) retire(f, i, end_s);
  }

  result.downgrades = policy.downgrade_count();
  result.faults.guard_incidents = policy.incident_count();

  // Fold the run's aggregates into the registry (one batch of adds at the
  // end; zero hot-path cost) and snapshot it into the result.
  if (obs.metrics != nullptr) {
    obs::MetricsRegistry& reg = *obs.metrics;
    reg.counter("platform.runs").add(1);
    reg.counter("platform.invocations").add(result.invocations);
    reg.counter("platform.warm_starts").add(result.warm_starts);
    reg.counter("platform.cold_starts").add(result.cold_starts);
    reg.counter("platform.scale_out_cold_starts").add(result.scale_out_cold_starts);
    reg.counter("platform.containers_created").add(result.containers_created);
    reg.counter("platform.prewarm_starts").add(result.prewarm_starts);
    reg.counter("platform.downgrades").add(result.downgrades);
    reg.counter("platform.capacity_evictions").add(result.faults.capacity_evictions);
    reg.counter("platform.crash_evictions").add(result.faults.crash_evictions);
    reg.counter("platform.failed_invocations").add(result.faults.failed_invocations);
    reg.counter("platform.retries").add(result.faults.retries);
    reg.counter("platform.timeouts").add(result.faults.timeouts);
    reg.counter("platform.degraded_minutes").add(result.faults.degraded_minutes);
    reg.counter("platform.guard_incidents").add(result.faults.guard_incidents);
    reg.gauge("platform.service_time_s").add(result.total_service_time_s);
    reg.gauge("platform.cost_usd").add(result.total_cost_usd);
    // Peak gauge: kMax so merging per-slot registries takes the maximum
    // instead of summing every slot's peak.
    reg.gauge("platform.peak_containers", obs::GaugeMerge::kMax)
        .max_with(static_cast<double>(result.peak_containers));
    result.metrics = reg.snapshot();
  }
  return result;
}

}  // namespace pulse::platform
