#pragma once
// Container-granular serverless platform simulator (seconds resolution).
//
// The paper's evaluation — like this repository's sim::SimulationEngine —
// works at minute resolution and lets all of a minute's invocations share
// one container. Real FaaS platforms (the AWS Lambda setup the paper
// characterized on) give each in-flight invocation its own container:
// concurrent requests scale out, and overlapping work triggers extra cold
// starts. This module simulates that faithfully:
//
//   * invocations inside a minute arrive spread across its 60 seconds;
//   * a request is served by an idle warm container of its function if one
//     exists, otherwise a new container cold-starts (scale-out);
//   * containers finish executing and return to the warm pool;
//   * at every minute boundary the platform reconciles the warm pool with
//     the policy's KeepAliveSchedule (same policy interface as the
//     minute engine): scheduled functions keep one pre-warmed container of
//     the scheduled variant; unscheduled idle containers are reaped.
//
// Its purpose is cross-validation: on low-concurrency workloads it must
// agree with the minute engine (tests assert this), and on bursty ones it
// quantifies the abstraction's error (bench_concurrency).

#include <cstdint>
#include <vector>

#include "models/latency.hpp"
#include "sim/cost_model.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "trace/trace.hpp"

namespace pulse::platform {

/// Platform time in seconds since trace start.
using Second = std::int64_t;

constexpr Second kSecondsPerMinute = 60;

struct PlatformConfig {
  sim::CostModel cost_model{};
  models::LatencyModel latency{};

  /// Use expected service times (exact arithmetic for tests).
  bool deterministic_latency = false;

  /// Seed for latency jitter and intra-minute arrival spreading.
  std::uint64_t seed = 1;

  /// Spread each minute's invocations uniformly over its 60 seconds (true)
  /// or fire them all at the minute's first second (false — the worst-case
  /// concurrency assumption).
  bool spread_arrivals = true;

  /// Record the per-minute memory series (sampled at minute boundaries).
  bool record_series = false;
};

struct PlatformResult {
  std::uint64_t invocations = 0;
  std::uint64_t warm_starts = 0;
  std::uint64_t cold_starts = 0;

  /// Cold starts caused purely by concurrency (a warm container existed
  /// but every one was busy) — the error term of the minute abstraction.
  std::uint64_t scale_out_cold_starts = 0;

  /// Containers created over the run (pre-warms + cold starts).
  std::uint64_t containers_created = 0;

  /// Largest number of simultaneously live containers.
  std::size_t peak_containers = 0;

  double total_service_time_s = 0.0;
  double accuracy_pct_sum = 0.0;

  /// Keep-alive + execution memory cost, USD (container-seconds priced by
  /// the same cost model as the minute engine).
  double total_cost_usd = 0.0;

  /// Per-minute container-memory samples (PlatformConfig::record_series).
  std::vector<double> memory_mb;

  [[nodiscard]] double average_accuracy_pct() const noexcept {
    return invocations ? accuracy_pct_sum / static_cast<double>(invocations) : 0.0;
  }
  [[nodiscard]] double warm_start_fraction() const noexcept {
    return invocations ? static_cast<double>(warm_starts) / static_cast<double>(invocations)
                       : 0.0;
  }
};

class PlatformSimulator {
 public:
  /// deployment/trace must outlive the simulator; function counts must
  /// match.
  PlatformSimulator(const sim::Deployment& deployment, const trace::Trace& trace,
                    PlatformConfig config = {});

  /// Replays the trace at container granularity under `policy` (the same
  /// minute-level KeepAlivePolicy interface the minute engine drives).
  [[nodiscard]] PlatformResult run(sim::KeepAlivePolicy& policy);

  [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }

 private:
  const sim::Deployment* deployment_;
  const trace::Trace* trace_;
  PlatformConfig config_;
};

}  // namespace pulse::platform
