#pragma once
// Container-granular serverless platform simulator (seconds resolution).
//
// The paper's evaluation — like this repository's sim::SimulationEngine —
// works at minute resolution and lets all of a minute's invocations share
// one container. Real FaaS platforms (the AWS Lambda setup the paper
// characterized on) give each in-flight invocation its own container:
// concurrent requests scale out, and overlapping work triggers extra cold
// starts. This module simulates that faithfully:
//
//   * invocations inside a minute arrive spread across its 60 seconds;
//   * a request is served by an idle warm container of its function if one
//     exists, otherwise a new container cold-starts (scale-out);
//   * containers finish executing and return to the warm pool;
//   * at every minute boundary the platform reconciles the warm pool with
//     the policy's KeepAliveSchedule (same policy interface as the
//     minute engine): scheduled functions keep one pre-warmed container of
//     the scheduled variant; unscheduled idle containers are reaped.
//
// Feature parity with the minute engine: the same hash-seeded
// fault::FaultInjector drives container crashes, cold-start retry/backoff,
// SLO timeouts and memory-pressure spikes; a memory capacity limit evicts
// kept containers with the engine's deterministic eviction order; and the
// obs::Observer layer (events, metrics, phase profiling) threads through
// reconcile/serve/retire under the same zero-overhead contract.
//
// Its purpose is cross-validation: on low-concurrency workloads it must
// agree with the minute engine — including fault counters and total cost
// under identical FaultConfig seeds (tests assert this) — and on bursty
// ones it quantifies the abstraction's error (bench_concurrency).

#include <cstdint>
#include <vector>

#include "fault/injector.hpp"
#include "models/latency.hpp"
#include "obs/observer.hpp"
#include "sim/cost_model.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "trace/trace.hpp"

namespace pulse::platform {

/// Platform time in seconds since trace start.
using Second = std::int64_t;

constexpr Second kSecondsPerMinute = 60;

struct PlatformConfig {
  sim::CostModel cost_model{};
  models::LatencyModel latency{};

  /// Use expected service times (exact arithmetic for tests).
  bool deterministic_latency = false;

  /// Seed for latency jitter and intra-minute arrival spreading. Jitter is
  /// drawn from per-function hashed streams (the FaultInjector trick), so
  /// adding a function never perturbs another function's samples.
  std::uint64_t seed = 1;

  /// Spread each minute's invocations uniformly over its 60 seconds (true)
  /// or fire them all at the minute's first second (false — the worst-case
  /// concurrency assumption).
  bool spread_arrivals = true;

  /// Record the per-minute memory series (sampled at minute boundaries).
  bool record_series = false;

  /// Absolute keep-alive memory capacity, MB (0 = unlimited). Mirrors
  /// EngineConfig::memory_capacity_mb: when the keep-alive schedule exceeds
  /// it at the end of a minute, kept containers are evicted in the minute
  /// engine's deterministic (seeded) random order until it fits.
  double memory_capacity_mb = 0.0;

  /// Fault injection (crashes, cold-start failures, SLO timeouts, memory
  /// pressure). Zero rates leave the run bitwise identical to one without
  /// any injector: fault decisions are hash-derived from FaultConfig::seed
  /// and consume no simulator RNG state.
  fault::FaultConfig faults{};

  /// Observability context: optional event sink, metrics registry, and
  /// phase profiler (all non-owning; default fully disabled). Attaching
  /// any of them leaves PlatformResult bitwise identical — the layer
  /// observes, it never steers.
  obs::Observer observer{};
};

struct PlatformResult {
  std::uint64_t invocations = 0;
  std::uint64_t warm_starts = 0;
  std::uint64_t cold_starts = 0;

  /// Cold starts caused purely by concurrency (a warm container existed
  /// but every one was busy) — the error term of the minute abstraction.
  std::uint64_t scale_out_cold_starts = 0;

  /// Containers created over the run (pre-warms + cold starts).
  std::uint64_t containers_created = 0;

  /// Containers spawned at reconcile time to satisfy the schedule (no
  /// invocation drove them). Each pays its variant's cold-start
  /// provisioning time before turning warm.
  std::uint64_t prewarm_starts = 0;

  /// Largest number of simultaneously live containers.
  std::size_t peak_containers = 0;

  double total_service_time_s = 0.0;
  double accuracy_pct_sum = 0.0;

  /// Keep-alive + execution memory cost, USD (container-seconds priced by
  /// the same cost model as the minute engine).
  double total_cost_usd = 0.0;

  /// Downgrades performed by the policy's cross-function optimizer.
  std::uint64_t downgrades = 0;

  /// Fault tallies (all zero unless PlatformConfig::faults has nonzero
  /// rates or a capacity limit is set). Same struct the minute engine
  /// reports, so parity tests compare them with one ==.
  sim::FaultCounters faults;

  /// Per-minute container-memory samples (PlatformConfig::record_series).
  std::vector<double> memory_mb;

  /// Snapshot of the attached obs::MetricsRegistry taken at the end of the
  /// run; empty when no registry was attached.
  obs::MetricsSnapshot metrics;

  [[nodiscard]] double average_accuracy_pct() const noexcept {
    return invocations ? accuracy_pct_sum / static_cast<double>(invocations) : 0.0;
  }
  [[nodiscard]] double warm_start_fraction() const noexcept {
    return invocations ? static_cast<double>(warm_starts) / static_cast<double>(invocations)
                       : 0.0;
  }
  [[nodiscard]] double failed_fraction() const noexcept {
    const std::uint64_t attempted = invocations + faults.failed_invocations;
    return attempted ? static_cast<double>(faults.failed_invocations) /
                           static_cast<double>(attempted)
                     : 0.0;
  }
};

class PlatformSimulator {
 public:
  /// deployment/trace must outlive the simulator; function counts must
  /// match.
  PlatformSimulator(const sim::Deployment& deployment, const trace::Trace& trace,
                    PlatformConfig config = {});

  /// Replays the trace at container granularity under `policy` (the same
  /// minute-level KeepAlivePolicy interface the minute engine drives).
  [[nodiscard]] PlatformResult run(sim::KeepAlivePolicy& policy);

  [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }

 private:
  const sim::Deployment* deployment_;
  const trace::Trace* trace_;
  PlatformConfig config_;
};

}  // namespace pulse::platform
