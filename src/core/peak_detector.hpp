#pragma once
// Keep-alive memory peak detection — Algorithm 1 of the paper.
//
// A minute t is a peak when its keep-alive memory exceeds the *prior*
// keep-alive memory by more than the keep-alive memory threshold KM_T:
//
//   is_peak  <=>  C_KaM > P_KaM + KM_T * P_KaM
//
// The subtlety Algorithm 1 handles is choosing P_KaM at the first minute of
// a keep-alive period (i.e. right after a stretch of inactivity): diurnal /
// nocturnal / intermittent functions would otherwise compare against a
// zero prior and cold-start en masse. The rules:
//
//   * continuous activity (previous minute had keep-alive memory):
//       P_KaM = keep-alive memory of minute t-1;
//   * first minute after inactivity, system operational for >= 2x the local
//     window and the window average is non-zero:
//       P_KaM = average keep-alive memory over the local window;
//   * otherwise:
//       P_KaM = the last non-zero keep-alive memory ever recorded, or
//       +infinity when none exists (never a peak right at system start).

#include <limits>

#include "sim/policy.hpp"
#include "trace/trace.hpp"

namespace pulse::core {

class PeakDetector {
 public:
  struct Config {
    /// KM_T: tunable keep-alive memory threshold (paper sweeps 5%/10%/15%
    /// in Figure 11; 10% is the default M2 setting).
    double memory_threshold = 0.10;
    /// Sliding local window duration, minutes.
    trace::Minute local_window = 60;
  };

  PeakDetector();  // default Config
  explicit PeakDetector(Config config) : config_(config) {}

  /// The ISPEAK predicate of Algorithm 1.
  [[nodiscard]] bool is_peak(double current_memory, double prior_memory) const noexcept {
    return current_memory > prior_memory + config_.memory_threshold * prior_memory;
  }

  /// P_KaM for minute t given the recorded history (minutes < t).
  ///
  /// The last-non-zero fallback memoizes its scan position, so repeated
  /// calls over an append-only history cost O(1) amortized instead of an
  /// O(t) backward walk per call. The memo keys on the history object's
  /// address and resets when a different history (or a rolled-back one,
  /// history.now() < scanned prefix) is presented; recorded minutes are
  /// assumed immutable once written, which holds for both the engine's
  /// memory record and the optimizer's demand history.
  [[nodiscard]] double prior_memory(const sim::MemoryHistory& history,
                                    trace::Minute t) const;

  /// Convenience: full Algorithm 1 decision for minute t.
  [[nodiscard]] bool detect(double current_memory, const sim::MemoryHistory& history,
                            trace::Minute t) const {
    return is_peak(current_memory, prior_memory(history, t));
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  static constexpr double kInfiniteMemory = std::numeric_limits<double>::infinity();

 private:
  Config config_;

  // Memo for the last-non-zero fallback scan: minutes [0, memo_scanned_)
  // of *memo_history_ have been examined; memo_last_minute_ / _value_ hold
  // the most recent non-zero among them (-1 when none). Mutable because
  // prior_memory() is logically const; a detector is owned by exactly one
  // single-threaded run.
  mutable const sim::MemoryHistory* memo_history_ = nullptr;
  mutable trace::Minute memo_scanned_ = 0;
  mutable trace::Minute memo_last_minute_ = -1;
  mutable double memo_last_value_ = 0.0;
};

inline PeakDetector::PeakDetector() : PeakDetector(Config{}) {}

}  // namespace pulse::core
