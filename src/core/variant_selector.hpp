#pragma once
// Greedy probability-threshold variant selection (§III-A, Figure 10).
//
// For a family with N variants, the invocation-probability space [0, 1] is
// partitioned into areas; the lowest-accuracy variant is assigned to the
// lowest-probability area and so on. Two partitioning techniques are
// evaluated by the paper:
//
//   T1: N areas with N-1 thresholds at 1/N, 2/N, ..., (N-1)/N.
//   T2: probability 0 reserves the lowest-accuracy variant; (0, 1] is
//       divided into N-1 areas (N-2 thresholds) for the remaining variants.
//
// Both always keep *some* variant alive, which is what guarantees PULSE at
// least a low-quality warm start within the window after an invocation.

#include <cstddef>

namespace pulse::core {

enum class ThresholdTechnique {
  kT1,  // N areas over [0, 1]
  kT2,  // lowest variant at p == 0; N-1 areas over (0, 1]
};

/// Selects the variant index (0 = lowest accuracy) to keep alive for an
/// invocation probability `probability` in [0, 1] and a family of
/// `variant_count` (>= 1) variants. Out-of-range probabilities are clamped.
[[nodiscard]] std::size_t select_variant(double probability, std::size_t variant_count,
                                         ThresholdTechnique technique);

/// Number of thresholds each technique uses (paper: N-1 for T1, N-2 for T2).
[[nodiscard]] std::size_t threshold_count(std::size_t variant_count,
                                          ThresholdTechnique technique) noexcept;

}  // namespace pulse::core
