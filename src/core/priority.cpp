#include "core/priority.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace pulse::core {

PriorityStructure::PriorityStructure(std::size_t model_count) : counts_(model_count, 0) {}

void PriorityStructure::record_downgrade(trace::FunctionId f) {
  counts_.at(f) += 1;
  ++total_;
}

std::uint64_t PriorityStructure::downgrade_count(trace::FunctionId f) const {
  return counts_.at(f);
}

std::vector<double> PriorityStructure::normalized() const {
  std::vector<double> values;
  normalized_into(values);
  return values;
}

void PriorityStructure::normalized_into(std::vector<double>& out) const {
  out.resize(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]);
  }
  util::minmax_normalize_inplace(out);
}

double PriorityStructure::normalized_priority(trace::FunctionId f) const {
  if (f >= counts_.size()) throw std::out_of_range("PriorityStructure::normalized_priority");
  return normalized()[f];
}

}  // namespace pulse::core
