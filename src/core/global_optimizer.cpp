#include "core/global_optimizer.hpp"

#include <limits>

namespace pulse::core {

GlobalOptimizer::GlobalOptimizer(std::size_t model_count)
    : GlobalOptimizer(model_count, Config{}) {}

GlobalOptimizer::GlobalOptimizer(std::size_t model_count, Config config)
    : config_(config), detector_(config.peak), priority_(model_count) {
  // A peak minute can first occur arbitrarily late in a served stream;
  // sizing the flatten-round buffers up front keeps even that first peak
  // allocation-free (serve-mode hot-path discipline).
  kept_buffer_.reserve(model_count);
  priority_buffer_.reserve(model_count);
}

UtilityComponents GlobalOptimizer::score(
    trace::FunctionId f, std::size_t variant, trace::Minute t,
    const sim::Deployment& deployment, const std::vector<double>& normalized_priority,
    const std::vector<InterArrivalTracker>& trackers) const {
  UtilityComponents u;
  u.accuracy_improvement = deployment.family_of(f).accuracy_improvement(variant);
  u.priority = normalized_priority.at(f);

  // Ip: probability the function is invoked during the remainder of its
  // current keep-alive window. The offset of "now" within the window comes
  // from the function's last invocation.
  const auto& tracker = trackers.at(f);
  if (const auto last = tracker.last_invocation()) {
    const trace::Minute offset = t - *last;
    if (offset < config_.keepalive_window) {
      u.invocation_probability = tracker.probability_within(
          static_cast<std::size_t>(offset + 1),
          static_cast<std::size_t>(config_.keepalive_window), t);
    }
  }
  return u;
}

std::size_t GlobalOptimizer::flatten_peak(trace::Minute t, sim::KeepAliveSchedule& schedule,
                                          const std::vector<InterArrivalTracker>& trackers) {
  // Record this minute's demand before any flattening, then compare it
  // against the prior derived from past demand (see DemandHistory).
  while (demand_.now() < t) demand_.push(0.0);  // tolerate skipped idle minutes
  const double prior = detector_.prior_memory(demand_, t);
  demand_.push(schedule.memory_at(t));
  std::size_t downgrades = 0;

  obs::TraceSink* const sink = obs_ != nullptr ? obs_->sink : nullptr;

  // The kept list is built once and maintained across rounds: a downgrade
  // only changes the downgraded function's own entry (one variant lower, or
  // gone entirely), so updating that entry in place is bit-identical to
  // re-listing the schedule — without the per-round O(F) scan + allocation.
  bool kept_built = false;
  while (detector_.is_peak(schedule.memory_at(t), prior)) {
    if (!kept_built) {
      schedule.kept_alive_at(t, kept_buffer_);
      kept_built = true;
    }
    if (kept_buffer_.empty()) break;  // nothing left to downgrade; peak cannot be flattened

    // Algorithm 2, line 4: normalize the priority structure once per round.
    priority_.normalized_into(priority_buffer_);
    const std::vector<double>& pr = priority_buffer_;

    std::size_t worst_idx = 0;
    double worst_uv = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < kept_buffer_.size(); ++i) {
      const auto& [f, variant] = kept_buffer_[i];
      const double uv =
          score(f, variant, t, schedule.deployment(), pr, trackers).value(config_.weights);
      if (uv < worst_uv) {
        worst_uv = uv;
        worst_idx = i;
      }
    }

    const trace::FunctionId worst_f = kept_buffer_[worst_idx].first;
    const auto prev = schedule.downgrade_from(worst_f, t);
    if (!prev) break;  // defensive: should not happen
    if (*prev > 0) {
      kept_buffer_[worst_idx].second = static_cast<std::size_t>(*prev - 1);
    } else {
      kept_buffer_.erase(kept_buffer_.begin() + static_cast<std::ptrdiff_t>(worst_idx));
    }
    priority_.record_downgrade(worst_f);
    ++downgrades;
    if (sink != nullptr) {
      sink->record({obs::EventType::kDowngrade, t, worst_f, *prev,
                    static_cast<double>(*prev - 1), "flatten_peak"});
    }
  }
  if (downgrades > 0) {
    // Minute boundary: fold this minute's deltas into the registry through
    // the pre-resolved handles (unbound handles make this a no-op).
    metrics_.peak_minutes.bump();
    metrics_.downgrades.bump(downgrades);
    metrics_.peak_minutes.flush();
    metrics_.downgrades.flush();
  }
  return downgrades;
}

void GlobalOptimizer::set_observer(const obs::Observer* observer) {
  obs_ = observer;
  metrics_ = Metrics{};
  if (observer != nullptr && observer->metrics != nullptr) {
    metrics_.peak_minutes.bind(*observer->metrics, "optimizer.peak_minutes");
    metrics_.downgrades.bind(*observer->metrics, "optimizer.downgrades");
  }
}

}  // namespace pulse::core
