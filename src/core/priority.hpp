#pragma once
// The Priority structure of §III-B: a per-model count of past downgrades,
// normalized with Equation 1 when a peak occurs. Models that have borne
// more downgrades get a higher priority value, which raises their utility
// and protects them from being downgraded yet again — the "unbiased
// downgrades" mechanism.

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace pulse::core {

class PriorityStructure {
 public:
  /// Initialized with zeros for all models "immediately after the system
  /// has started" (Algorithm 2, line 1).
  explicit PriorityStructure(std::size_t model_count);

  /// Records one downgrade of model f (Algorithm 2, line 10).
  void record_downgrade(trace::FunctionId f);

  [[nodiscard]] std::uint64_t downgrade_count(trace::FunctionId f) const;
  [[nodiscard]] std::uint64_t total_downgrades() const noexcept { return total_; }
  [[nodiscard]] std::size_t model_count() const noexcept { return counts_.size(); }

  /// Equation 1 normalization of the whole structure: the most-downgraded
  /// model maps to 1, the least to 0; all-equal counts map to all zeros.
  [[nodiscard]] std::vector<double> normalized() const;

  /// Allocation-free variant of normalized(): writes into `out` (resized).
  /// Hot loops reuse one buffer across rounds.
  void normalized_into(std::vector<double>& out) const;

  /// Normalized priority of a single model (computes the full
  /// normalization; use normalized() when scoring many models at once).
  [[nodiscard]] double normalized_priority(trace::FunctionId f) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace pulse::core
