#include "core/peak_detector.hpp"

#include <algorithm>

namespace pulse::core {

double PeakDetector::prior_memory(const sim::MemoryHistory& history, trace::Minute t) const {
  if (t <= 0) return kInfiniteMemory;

  const double previous = history.memory_at(t - 1);
  if (previous > 0.0) {
    // Continuous activity: minutes after the first of a keep-alive period
    // simply compare against the previous minute (Algorithm 1, line 21).
    return previous;
  }

  // First minute of a keep-alive period after inactivity.
  const trace::Minute window = config_.local_window;
  double window_sum = 0.0;
  trace::Minute window_count = 0;
  for (trace::Minute q = std::max<trace::Minute>(0, t - window); q < t; ++q) {
    window_sum += history.memory_at(q);
    ++window_count;
  }
  const double window_avg = window_count > 0 ? window_sum / static_cast<double>(window_count) : 0.0;

  if (t >= 2 * window && window_avg > 0.0) {
    return window_avg;
  }

  // Fall back to the last non-zero keep-alive memory value ever recorded.
  // Memoized: instead of walking t-1..0 on every call (~20k iterations per
  // call late in a 14-day trace), remember how far this history has been
  // scanned and where its latest non-zero value sits, and only examine the
  // minutes appended since.
  const bool same_history =
      &history == memo_history_ && history.now() >= memo_scanned_ &&
      (memo_last_minute_ < 0 || history.memory_at(memo_last_minute_) == memo_last_value_);
  if (!same_history) {
    memo_history_ = &history;
    memo_scanned_ = 0;
    memo_last_minute_ = -1;
    memo_last_value_ = 0.0;
  }

  if (t < memo_scanned_) {
    if (memo_last_minute_ < t) {
      // No non-zero exists in [memo_last_minute_+1, memo_scanned_), so the
      // memoized hit (or miss) also answers the earlier query.
      return memo_last_minute_ >= 0 ? memo_last_value_ : kInfiniteMemory;
    }
    // The memoized non-zero sits at or past t; scan backwards without
    // disturbing the memo (queries for old minutes are rare).
    for (trace::Minute q = t - 1; q >= 0; --q) {
      const double m = history.memory_at(q);
      if (m > 0.0) return m;
    }
    return kInfiniteMemory;
  }

  for (trace::Minute q = memo_scanned_; q < t; ++q) {
    const double m = history.memory_at(q);
    if (m > 0.0) {
      memo_last_minute_ = q;
      memo_last_value_ = m;
    }
  }
  memo_scanned_ = t;
  return memo_last_minute_ >= 0 ? memo_last_value_ : kInfiniteMemory;
}

}  // namespace pulse::core
