#include "core/peak_detector.hpp"

namespace pulse::core {

double PeakDetector::prior_memory(const sim::MemoryHistory& history, trace::Minute t) const {
  if (t <= 0) return kInfiniteMemory;

  const double previous = history.memory_at(t - 1);
  if (previous > 0.0) {
    // Continuous activity: minutes after the first of a keep-alive period
    // simply compare against the previous minute (Algorithm 1, line 21).
    return previous;
  }

  // First minute of a keep-alive period after inactivity.
  const trace::Minute window = config_.local_window;
  double window_sum = 0.0;
  trace::Minute window_count = 0;
  for (trace::Minute q = std::max<trace::Minute>(0, t - window); q < t; ++q) {
    window_sum += history.memory_at(q);
    ++window_count;
  }
  const double window_avg = window_count > 0 ? window_sum / static_cast<double>(window_count) : 0.0;

  if (t >= 2 * window && window_avg > 0.0) {
    return window_avg;
  }

  // Fall back to the last non-zero keep-alive memory value ever recorded.
  for (trace::Minute q = t - 1; q >= 0; --q) {
    const double m = history.memory_at(q);
    if (m > 0.0) return m;
  }
  return kInfiniteMemory;
}

}  // namespace pulse::core
