#include "core/interarrival.hpp"

#include <algorithm>

namespace pulse::core {

InterArrivalTracker::InterArrivalTracker() : InterArrivalTracker(Config{}) {}

InterArrivalTracker::InterArrivalTracker(Config config)
    : config_(config),
      full_histogram_(config.histogram_capacity),
      window_counts_(config.histogram_capacity + 1, 0) {
  // One gap lands per minute at most, so the live ring never exceeds the
  // retention horizon; pre-sizing keeps record() allocation-free.
  recent_.reserve(static_cast<std::size_t>(std::max<trace::Minute>(config_.local_window, 1)) * 4 +
                  2);
}

void InterArrivalTracker::window_add(const GapEvent& e) const {
  ++window_total_;
  if (e.gap < window_counts_.size()) ++window_counts_[e.gap];
}

void InterArrivalTracker::window_remove(const GapEvent& e) const {
  --window_total_;
  if (e.gap < window_counts_.size()) --window_counts_[e.gap];
}

void InterArrivalTracker::record(trace::Minute t) {
  if (last_invocation_) {
    if (t <= *last_invocation_) return;  // same minute (or out of order): one sample per minute
    const auto gap = static_cast<std::size_t>(t - *last_invocation_);
    full_histogram_.add(gap);
    recent_.push_back(GapEvent{t, gap});
    if (t >= cached_cutoff_) {
      window_add(recent_.back());
    } else {
      // The new event predates the memoized cutoff (a query ran with a
      // `now` past this record time); keep it out of the window.
      win_begin_seq_ = ring_begin_seq_ + recent_.size();
    }
    // Bound the ring: events older than the largest supported window are
    // unreachable by any probability() query.
    const trace::Minute horizon = t - std::max<trace::Minute>(config_.local_window, 1) * 4;
    while (!recent_.empty() && recent_.front().end_minute < horizon) {
      if (ring_begin_seq_ >= win_begin_seq_) window_remove(recent_.front());
      recent_.pop_front();
      ++ring_begin_seq_;
      win_begin_seq_ = std::max(win_begin_seq_, ring_begin_seq_);
    }
  }
  last_invocation_ = t;
}

void InterArrivalTracker::advance_window(trace::Minute cutoff) const {
  if (cutoff == cached_cutoff_) return;
  const std::uint64_t seq_end = ring_begin_seq_ + recent_.size();
  if (cutoff > cached_cutoff_) {
    // Forward move: shed events that fell off the window's trailing edge.
    while (win_begin_seq_ < seq_end &&
           recent_[static_cast<std::size_t>(win_begin_seq_ - ring_begin_seq_)].end_minute <
               cutoff) {
      window_remove(recent_[static_cast<std::size_t>(win_begin_seq_ - ring_begin_seq_)]);
      ++win_begin_seq_;
    }
  } else {
    // Backward move (query older than the previous one): rebuild the window
    // from the ring. Rare; bounded by the ring's retention horizon.
    std::fill(window_counts_.begin(), window_counts_.end(), 0U);
    window_total_ = 0;
    win_begin_seq_ = seq_end;
    while (win_begin_seq_ > ring_begin_seq_ &&
           recent_[static_cast<std::size_t>(win_begin_seq_ - 1 - ring_begin_seq_)].end_minute >=
               cutoff) {
      --win_begin_seq_;
      window_add(recent_[static_cast<std::size_t>(win_begin_seq_ - ring_begin_seq_)]);
    }
  }
  cached_cutoff_ = cutoff;
}

std::uint64_t InterArrivalTracker::window_matches(std::size_t d) const {
  if (d < window_counts_.size()) return window_counts_[d];
  // Gaps beyond the count table are tallied by walking the window suffix;
  // its length is bounded by the window span (one gap per minute).
  std::uint64_t matches = 0;
  for (std::uint64_t s = win_begin_seq_; s < ring_begin_seq_ + recent_.size(); ++s) {
    if (recent_[static_cast<std::size_t>(s - ring_begin_seq_)].gap == d) ++matches;
  }
  return matches;
}

double InterArrivalTracker::probability(std::size_t d, trace::Minute now) const {
  const double p_full = full_histogram_.probability(d);

  // Local-window estimate: gaps whose closing invocation lies within
  // [now - local_window, now].
  advance_window(now - config_.local_window);
  if (window_total_ == 0) return p_full;
  const double p_local =
      static_cast<double>(window_matches(d)) / static_cast<double>(window_total_);
  return 0.5 * (p_full + p_local);
}

double InterArrivalTracker::probability_within(std::size_t from_d, std::size_t to_d,
                                               trace::Minute now) const {
  // One window advance up front; the per-d lookups below are then O(1),
  // making the whole sum O(range) instead of O(range x window). The per-d
  // arithmetic and summation order match probability() exactly.
  advance_window(now - config_.local_window);
  double total = 0.0;
  for (std::size_t d = from_d; d <= to_d; ++d) total += probability(d, now);
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace pulse::core
