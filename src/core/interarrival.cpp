#include "core/interarrival.hpp"

#include <algorithm>

namespace pulse::core {

InterArrivalTracker::InterArrivalTracker() : InterArrivalTracker(Config{}) {}

InterArrivalTracker::InterArrivalTracker(Config config)
    : config_(config), full_histogram_(config.histogram_capacity) {}

void InterArrivalTracker::record(trace::Minute t) {
  if (last_invocation_) {
    if (t <= *last_invocation_) return;  // same minute (or out of order): one sample per minute
    const auto gap = static_cast<std::size_t>(t - *last_invocation_);
    full_histogram_.add(gap);
    recent_.push_back(GapEvent{t, gap});
    // Bound the deque: events older than the largest supported window are
    // unreachable by any probability() query.
    const trace::Minute horizon = t - std::max<trace::Minute>(config_.local_window, 1) * 4;
    while (!recent_.empty() && recent_.front().end_minute < horizon) recent_.pop_front();
  }
  last_invocation_ = t;
}

double InterArrivalTracker::probability(std::size_t d, trace::Minute now) const {
  const double p_full = full_histogram_.probability(d);

  // Local-window estimate: gaps whose closing invocation lies within
  // [now - local_window, now].
  const trace::Minute cutoff = now - config_.local_window;
  std::uint64_t local_total = 0;
  std::uint64_t local_match = 0;
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it->end_minute < cutoff) break;
    ++local_total;
    if (it->gap == d) ++local_match;
  }

  if (local_total == 0) return p_full;
  const double p_local =
      static_cast<double>(local_match) / static_cast<double>(local_total);
  return 0.5 * (p_full + p_local);
}

double InterArrivalTracker::probability_within(std::size_t from_d, std::size_t to_d,
                                               trace::Minute now) const {
  double total = 0.0;
  for (std::size_t d = from_d; d <= to_d; ++d) total += probability(d, now);
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace pulse::core
