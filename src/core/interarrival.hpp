#pragma once
// Per-function inter-arrival probability estimation (§III-A).
//
// PULSE estimates, for each offset d in the 10-minute keep-alive window,
// the probability that the function's next invocation arrives exactly d
// minutes after the previous one. Two estimates are combined: one over a
// sliding local window of recent history (patterns drift — Figure 2) and
// one over the full history since system start; the two probabilities are
// averaged.
//
// The local-window estimate is maintained incrementally: a per-gap count
// table covers the gaps currently inside [now - local_window, now], and is
// advanced lazily as `now` moves forward. probability() is O(1) amortized
// and probability_within() is O(range) — previously both rescanned the
// recent-gap deque per candidate gap. Queries are bit-identical to the
// rescanning implementation: the per-d arithmetic (0.5 * (p_full +
// match/total)) is unchanged; only how match/total are obtained differs.

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "trace/trace.hpp"
#include "util/ring_buffer.hpp"
#include "util/stats.hpp"

namespace pulse::core {

class InterArrivalTracker {
 public:
  struct Config {
    /// Length of the sliding local window, minutes (the paper sweeps
    /// 10/60/120 in Figure 12; 60 is the default).
    trace::Minute local_window = 60;
    /// Largest representable inter-arrival value in the full-history
    /// histogram; larger gaps count toward the total but not to any bucket.
    std::size_t histogram_capacity = 240;
  };

  InterArrivalTracker();  // default Config
  explicit InterArrivalTracker(Config config);

  /// Records an invocation at minute t. Invocations must be recorded in
  /// non-decreasing time order; repeated minutes are ignored (the paper's
  /// inter-arrival resolution is one minute).
  void record(trace::Minute t);

  /// P(inter-arrival == d), averaged over the local-window estimate and the
  /// full-history estimate, evaluated at minute `now`. When the local
  /// window holds no gaps the full-history estimate is used alone.
  ///
  /// Memoizes the window position across calls (O(1) amortized when `now`
  /// is non-decreasing; a backward jump triggers an O(window) rebuild), so
  /// concurrent queries on one tracker are not safe — each simulation run
  /// owns its trackers exclusively.
  [[nodiscard]] double probability(std::size_t d, trace::Minute now) const;

  /// Sum of probability() over d in [from_d, to_d], clamped to [0, 1] —
  /// "probability of invocation" during the remainder of a window (the Ip
  /// component of Equation 2).
  [[nodiscard]] double probability_within(std::size_t from_d, std::size_t to_d,
                                          trace::Minute now) const;

  [[nodiscard]] std::optional<trace::Minute> last_invocation() const noexcept {
    return last_invocation_;
  }

  /// Smallest gap g such that a fraction `p` of observed inter-arrival
  /// times are <= g (full history; overflow gaps excluded). nullopt until
  /// gaps exist. Drives the adaptive keep-alive window extension.
  [[nodiscard]] std::optional<std::size_t> gap_percentile(double p) const noexcept {
    return full_histogram_.percentile_value(p);
  }

  [[nodiscard]] std::uint64_t total_gaps() const noexcept { return full_histogram_.total(); }
  [[nodiscard]] const util::IntHistogram& full_histogram() const noexcept {
    return full_histogram_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  struct GapEvent {
    trace::Minute end_minute;  // minute of the invocation closing the gap
    std::size_t gap;
  };

  /// Moves the memoized window to cover end_minutes >= cutoff. Forward
  /// moves pop events off the window's leading edge; a backward move (rare:
  /// only a query older than the previous one) rebuilds from the ring.
  void advance_window(trace::Minute cutoff) const;

  /// Adds/removes one event from the memoized window tallies.
  void window_add(const GapEvent& e) const;
  void window_remove(const GapEvent& e) const;

  /// Matches inside the current window for gap d. O(1) for d within the
  /// count table; gaps larger than histogram_capacity are rare and counted
  /// by scanning the (bounded) window suffix of the ring.
  [[nodiscard]] std::uint64_t window_matches(std::size_t d) const;

  Config config_;
  util::IntHistogram full_histogram_;
  util::RingBuffer<GapEvent> recent_;
  std::uint64_t ring_begin_seq_ = 0;  // absolute sequence of recent_[0]
  std::optional<trace::Minute> last_invocation_;

  // Memoized local-window state (see probability()). The window is the
  // suffix of `recent_` with absolute sequence >= win_begin_seq_;
  // window_counts_[g] tallies its gaps of size g <= histogram_capacity.
  mutable std::vector<std::uint32_t> window_counts_;
  mutable std::uint64_t window_total_ = 0;
  mutable std::uint64_t win_begin_seq_ = 0;
  mutable trace::Minute cached_cutoff_ = std::numeric_limits<trace::Minute>::min();
};

}  // namespace pulse::core
