#pragma once
// Utility value of a model keep-alive decision — Equation 2 of the paper:
//
//   Uv = Ai + Pr + Ip
//
// Ai: accuracy improvement of the kept variant over the next-lower one (or
//     the variant's own accuracy fraction when it is the lowest);
// Pr: normalized priority (past downgrade count, Equation 1);
// Ip: probability of invocation during the peak.
//
// Each component lies in [0, 1] and the three are equally weighted; during
// a peak the model with the lowest Uv is downgraded first.

namespace pulse::core {

/// Component weights for the utility value. The paper weights all three
/// equally ("To ensure a balanced assessment ... the three components are
/// equally weighted"); the weights exist for the ablation study that
/// validates that choice (bench_ablation_utility) — zeroing a component
/// removes it from the decision.
struct UtilityWeights {
  double accuracy_improvement = 1.0;
  double priority = 1.0;
  double invocation_probability = 1.0;
};

struct UtilityComponents {
  double accuracy_improvement = 0.0;    // Ai
  double priority = 0.0;                // Pr
  double invocation_probability = 0.0;  // Ip

  /// Equation 2 with the paper's equal weights.
  [[nodiscard]] constexpr double value() const noexcept {
    return accuracy_improvement + priority + invocation_probability;
  }

  /// Weighted variant for ablations.
  [[nodiscard]] constexpr double value(const UtilityWeights& w) const noexcept {
    return w.accuracy_improvement * accuracy_improvement + w.priority * priority +
           w.invocation_probability * invocation_probability;
  }
};

}  // namespace pulse::core
