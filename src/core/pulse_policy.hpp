#pragma once
// The PULSE keep-alive policy: function-centric optimization (inter-arrival
// probabilities + greedy variant thresholds) composed with cross-function
// optimization (utility-value peak flattening). This is the paper's primary
// contribution, packaged as a sim::KeepAlivePolicy.

#include <memory>
#include <vector>

#include "core/global_optimizer.hpp"
#include "core/interarrival.hpp"
#include "core/variant_selector.hpp"
#include "sim/policy.hpp"

namespace pulse::core {

class PulsePolicy : public sim::KeepAlivePolicy {
 public:
  struct Config {
    /// Keep-alive window length after an invocation, minutes. The paper is
    /// built around the providers' 10-minute window but notes the design
    /// "can be adapted to different keep-alive durations".
    trace::Minute keepalive_window = trace::kKeepAliveWindow;

    /// Sliding local window for both the inter-arrival tracker and the
    /// peak detector (Figure 12 sweeps 10/60/120).
    trace::Minute local_window = 60;

    /// KM_T of Algorithm 1 (Figure 11 sweeps 0.05/0.10/0.15).
    double memory_threshold = 0.10;

    /// Probability-threshold technique (Figure 10 compares T1 and T2).
    ThresholdTechnique technique = ThresholdTechnique::kT1;

    /// Disable to get the "individual function optimization only"
    /// configuration of Figure 4(b).
    bool enable_global_optimization = true;

    /// Utility component weights for the global optimizer (equal by
    /// default, per the paper; used by the ablation bench).
    UtilityWeights utility_weights{};

    /// Extension beyond the paper (its conclusion notes the design "can be
    /// adapted to different keep-alive durations"): when enabled, each
    /// function's window length follows the tail of its own inter-arrival
    /// distribution — clamp(p-quantile of observed gaps, 1,
    /// max_adaptive_window) — instead of the fixed keepalive_window.
    bool adaptive_window = false;
    double adaptive_window_percentile = 0.95;
    trace::Minute max_adaptive_window = 30;
  };

  PulsePolicy();  // default Config
  explicit PulsePolicy(Config config);

  [[nodiscard]] std::string name() const override;

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override;

  /// The optimizer binds metric handles when an observer is attached;
  /// forwarding keeps those bindings in sync when the engine detaches or
  /// re-attaches mid-run (e.g. around a silent checkpoint replay).
  void attach_observer(const obs::Observer* observer) override;

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override;

  void end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                     const sim::MemoryHistory& history) override;

  /// Cold starts within an active keep-alive window only happen when the
  /// global optimizer dropped the container — those serve the lowest
  /// (cheapest) variant, which is what the downgrade decided. Fresh cold
  /// starts (no invocation within the window) deploy the highest variant,
  /// matching the provider default the baselines use.
  [[nodiscard]] std::size_t cold_start_variant(trace::FunctionId f, trace::Minute t,
                                               const sim::Deployment& deployment) const override;

  [[nodiscard]] std::uint64_t downgrade_count() const override;

  [[nodiscard]] std::unique_ptr<sim::PolicyCheckpoint> checkpoint() const override;
  void restore(const sim::PolicyCheckpoint* snapshot) override;

  /// Introspection for tests and benches.
  [[nodiscard]] const std::vector<InterArrivalTracker>& trackers() const noexcept {
    return trackers_;
  }
  [[nodiscard]] const GlobalOptimizer& optimizer() const;
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Window length that will be scheduled for f's next invocation (the
  /// fixed configuration value, or the adaptive per-function length).
  [[nodiscard]] trace::Minute window_for(trace::FunctionId f) const;

 private:
  Config config_;
  std::vector<InterArrivalTracker> trackers_;
  std::unique_ptr<GlobalOptimizer> optimizer_;
};

}  // namespace pulse::core
