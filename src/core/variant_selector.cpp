#include "core/variant_selector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pulse::core {

std::size_t select_variant(double probability, std::size_t variant_count,
                           ThresholdTechnique technique) {
  if (variant_count == 0) {
    throw std::invalid_argument("select_variant: variant_count must be >= 1");
  }
  const double p = std::clamp(probability, 0.0, 1.0);
  const auto n = static_cast<double>(variant_count);

  switch (technique) {
    case ThresholdTechnique::kT1: {
      // Area k (0-based) covers [k/N, (k+1)/N); p == 1 falls in the top area.
      const auto area = static_cast<std::size_t>(std::floor(p * n));
      return std::min(area, variant_count - 1);
    }
    case ThresholdTechnique::kT2: {
      if (p == 0.0 || variant_count == 1) return 0;
      // (0, 1] divided into N-1 areas for variants 1..N-1.
      const auto areas = static_cast<double>(variant_count - 1);
      const auto area = static_cast<std::size_t>(std::floor(p * areas));
      return 1 + std::min(area, variant_count - 2);
    }
  }
  return 0;
}

std::size_t threshold_count(std::size_t variant_count, ThresholdTechnique technique) noexcept {
  if (variant_count == 0) return 0;
  switch (technique) {
    case ThresholdTechnique::kT1:
      return variant_count - 1;
    case ThresholdTechnique::kT2:
      return variant_count >= 2 ? variant_count - 2 : 0;
  }
  return 0;
}

}  // namespace pulse::core
