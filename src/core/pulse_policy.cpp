#include "core/pulse_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace pulse::core {

namespace {

/// Everything PulsePolicy mutates after initialize(): the per-function
/// trackers and the global optimizer (priority tallies, demand history,
/// peak state). The config is construction-time and needs no snapshot.
struct PulseCheckpoint final : sim::PolicyCheckpoint {
  std::vector<InterArrivalTracker> trackers;
  std::unique_ptr<GlobalOptimizer> optimizer;  // null before initialize()
};

}  // namespace

PulsePolicy::PulsePolicy() : PulsePolicy(Config{}) {}

PulsePolicy::PulsePolicy(Config config) : config_(config) {
  if (config_.keepalive_window <= 0) {
    throw std::invalid_argument("PulsePolicy: keepalive_window must be positive");
  }
}

std::string PulsePolicy::name() const {
  std::string n = "PULSE";
  n += config_.technique == ThresholdTechnique::kT1 ? "(T1" : "(T2";
  if (!config_.enable_global_optimization) n += ",individual-only";
  n += ")";
  return n;
}

void PulsePolicy::initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                             sim::KeepAliveSchedule& schedule) {
  (void)schedule;
  InterArrivalTracker::Config tracker_config;
  tracker_config.local_window = config_.local_window;
  trackers_.assign(deployment.function_count(), InterArrivalTracker(tracker_config));

  GlobalOptimizer::Config opt_config;
  opt_config.peak.memory_threshold = config_.memory_threshold;
  opt_config.peak.local_window = config_.local_window;
  opt_config.keepalive_window = config_.keepalive_window;
  opt_config.weights = config_.utility_weights;
  optimizer_ = std::make_unique<GlobalOptimizer>(deployment.function_count(), opt_config);
  optimizer_->reserve_horizon(static_cast<std::size_t>(trace.duration()));
  optimizer_->set_observer(observer());
}

void PulsePolicy::attach_observer(const obs::Observer* observer) {
  sim::KeepAlivePolicy::attach_observer(observer);
  if (optimizer_) optimizer_->set_observer(observer);
}

trace::Minute PulsePolicy::window_for(trace::FunctionId f) const {
  if (!config_.adaptive_window) return config_.keepalive_window;
  const auto tail = trackers_.at(f).gap_percentile(config_.adaptive_window_percentile);
  if (!tail) return config_.keepalive_window;
  return std::clamp<trace::Minute>(static_cast<trace::Minute>(*tail), 1,
                                   config_.max_adaptive_window);
}

void PulsePolicy::on_invocation(trace::FunctionId f, trace::Minute t,
                                sim::KeepAliveSchedule& schedule) {
  const obs::PhaseTimer timer(profiler(), obs::Phase::kSchedule);
  InterArrivalTracker& tracker = trackers_.at(f);
  tracker.record(t);

  // Function-centric optimization: pick the variant for each minute of the
  // upcoming keep-alive window from that offset's invocation probability.
  const std::size_t variants = schedule.variant_count_of(f);
  const trace::Minute window = window_for(f);
  // Clear any longer window a previous (adaptive) decision left behind.
  if (config_.adaptive_window) schedule.clear_from(f, t + 1);
  std::size_t next_v = 0;  // variant chosen for the first window minute
  for (trace::Minute d = 1; d <= window; ++d) {
    const double p = tracker.probability(static_cast<std::size_t>(d), t);
    const std::size_t v = select_variant(p, variants, config_.technique);
    if (d == 1) next_v = v;
    schedule.set(f, t + d, static_cast<int>(v));
  }

  // One kPolicyDecision per variant-selection pass: the variant chosen for
  // the first window minute (the decision that resolves the next warm
  // start) and the window length it covers. `next_v` is hoisted from the
  // d == 1 loop iteration above — attached runs must not pay a second
  // probability + select_variant pass per invocation.
  if (obs::TraceSink* s = sink(); s != nullptr) {
    s->record({obs::EventType::kPolicyDecision, t, f, static_cast<std::int32_t>(next_v),
               static_cast<double>(window), "variant_selection"});
  }
}

void PulsePolicy::end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                                const sim::MemoryHistory& history) {
  (void)history;  // peaks are detected against the policy's own demand record
  if (!config_.enable_global_optimization) return;
  const obs::PhaseTimer timer(profiler(), obs::Phase::kOptimize);
  optimizer_->flatten_peak(t, schedule, trackers_);
}

std::size_t PulsePolicy::cold_start_variant(trace::FunctionId f, trace::Minute t,
                                            const sim::Deployment& deployment) const {
  if (f < trackers_.size()) {
    if (const auto last = trackers_[f].last_invocation()) {
      if (t - *last <= config_.keepalive_window) return 0;
    }
  }
  return deployment.family_of(f).highest_index();
}

std::uint64_t PulsePolicy::downgrade_count() const {
  return optimizer_ ? optimizer_->total_downgrades() : 0;
}

std::unique_ptr<sim::PolicyCheckpoint> PulsePolicy::checkpoint() const {
  auto snap = std::make_unique<PulseCheckpoint>();
  snap->trackers = trackers_;
  if (optimizer_) snap->optimizer = std::make_unique<GlobalOptimizer>(*optimizer_);
  return snap;
}

void PulsePolicy::restore(const sim::PolicyCheckpoint* snapshot) {
  const auto* snap = dynamic_cast<const PulseCheckpoint*>(snapshot);
  if (snap == nullptr) {
    throw std::invalid_argument("PulsePolicy::restore: wrong snapshot type");
  }
  trackers_ = snap->trackers;
  optimizer_ =
      snap->optimizer ? std::make_unique<GlobalOptimizer>(*snap->optimizer) : nullptr;
  if (optimizer_) optimizer_->set_observer(observer());
}

const GlobalOptimizer& PulsePolicy::optimizer() const {
  if (!optimizer_) throw std::logic_error("PulsePolicy::optimizer: not initialized");
  return *optimizer_;
}

}  // namespace pulse::core
