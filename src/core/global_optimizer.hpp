#pragma once
// Cross-function optimization — Algorithm 2 of the paper.
//
// When the peak detector flags a minute, the optimizer repeatedly scores
// every kept-alive model with the utility value Uv = Ai + Pr + Ip and
// downgrades the lowest-utility model by one variant (the lowest variant is
// dropped entirely, i.e. the next invocation cold-starts), until the peak
// is flattened. Every downgrade is tallied in the priority structure so the
// burden rotates across models instead of repeatedly hitting the same one.

#include <cstdint>
#include <vector>

#include "core/interarrival.hpp"
#include "core/peak_detector.hpp"
#include "core/priority.hpp"
#include "core/utility.hpp"
#include "obs/observer.hpp"
#include "sim/schedule.hpp"
#include "trace/analysis.hpp"

namespace pulse::core {

/// Per-minute record of *demand* keep-alive memory — what the
/// function-centric optimizer scheduled before any peak flattening. The
/// peak detector's prior must come from this series, not from the
/// post-flatten memory the platform actually held: comparing against the
/// flattened series would classify any recovery above the flattened level
/// as a new peak and ratchet keep-alive memory toward zero.
class DemandHistory final : public sim::MemoryHistory {
 public:
  void push(double memory_mb) { values_.push_back(memory_mb); }

  /// Pre-sizes the backing store (one slot per simulated minute) so push()
  /// never reallocates during a run — required by the serve-mode
  /// allocation-free hot-path discipline.
  void reserve(std::size_t minutes) { values_.reserve(minutes); }

  [[nodiscard]] double memory_at(trace::Minute t) const override {
    if (t < 0 || static_cast<std::size_t>(t) >= values_.size()) return 0.0;
    return values_[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] trace::Minute now() const override {
    return static_cast<trace::Minute>(values_.size());
  }

 private:
  std::vector<double> values_;
};

class GlobalOptimizer {
 public:
  struct Config {
    PeakDetector::Config peak{};
    /// Length of the keep-alive window Ip is evaluated over.
    trace::Minute keepalive_window = trace::kKeepAliveWindow;
    /// Utility component weights (equal by default, per the paper).
    UtilityWeights weights{};
  };

  explicit GlobalOptimizer(std::size_t model_count);  // default Config
  GlobalOptimizer(std::size_t model_count, Config config);

  /// Runs Algorithm 2 for minute t: records the demand memory of minute t,
  /// and if t is a peak (demand vs. the demand history's prior), downgrades
  /// lowest-Uv models (mutating `schedule` from minute t onward) until the
  /// peak is flattened or nothing is left to downgrade. Must be called once
  /// per minute in order. Returns the number of downgrades performed for
  /// this minute.
  std::size_t flatten_peak(trace::Minute t, sim::KeepAliveSchedule& schedule,
                           const std::vector<InterArrivalTracker>& trackers);

  /// Pre-sizes the demand history for a run of `minutes` minutes, keeping
  /// flatten_peak's bookkeeping off the allocator.
  void reserve_horizon(std::size_t minutes) { demand_.reserve(minutes); }

  /// Utility score for function f keeping variant `variant` alive at t,
  /// given a pre-normalized priority vector.
  [[nodiscard]] UtilityComponents score(trace::FunctionId f, std::size_t variant,
                                        trace::Minute t,
                                        const sim::Deployment& deployment,
                                        const std::vector<double>& normalized_priority,
                                        const std::vector<InterArrivalTracker>& trackers) const;

  /// Pre-resolved optimizer.* handle bundle (metrics_registry.hpp): bound
  /// once in set_observer, bumped on the flatten path, flushed at the
  /// flatten_peak minute boundary — no name lookup per peak minute.
  struct Metrics {
    obs::CounterHandle peak_minutes;
    obs::CounterHandle downgrades;
  };

  /// Attaches the observability context (nullptr = disabled). The owning
  /// policy forwards what the engine handed it; the optimizer then emits a
  /// kDowngrade event per downgrade and keeps optimizer.* counters.
  void set_observer(const obs::Observer* observer);

  [[nodiscard]] std::uint64_t total_downgrades() const noexcept {
    return priority_.total_downgrades();
  }
  [[nodiscard]] const PriorityStructure& priority() const noexcept { return priority_; }
  [[nodiscard]] const PeakDetector& detector() const noexcept { return detector_; }
  [[nodiscard]] const DemandHistory& demand_history() const noexcept { return demand_; }

 private:
  Config config_;
  PeakDetector detector_;
  PriorityStructure priority_;
  DemandHistory demand_;
  const obs::Observer* obs_ = nullptr;
  Metrics metrics_;

  /// Reused across flatten_peak rounds (allocation-free hot path).
  std::vector<std::pair<trace::FunctionId, std::size_t>> kept_buffer_;
  std::vector<double> priority_buffer_;
};

}  // namespace pulse::core
