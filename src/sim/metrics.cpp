#include "sim/metrics.hpp"

#include "util/stats.hpp"

namespace pulse::sim {

double RunResult::service_time_percentile(double p) const {
  if (service_time_samples.empty()) return 0.0;
  return util::percentile(service_time_samples, p);
}

std::vector<double> RunResult::service_time_percentiles(std::span<const double> ps) const {
  return util::percentiles(service_time_samples, ps);
}

}  // namespace pulse::sim
