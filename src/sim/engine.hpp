#pragma once
// Minute-resolution discrete-event simulation of a serverless platform
// serving ML inference under a pluggable keep-alive policy.
//
// Faithful to the paper's simulation methodology (§IV): the trace is
// replayed at minute resolution; invocations within a minute share the
// container state of that minute; the first invocation of a cold minute
// pays the cold-start penalty; keep-alive memory and cost accrue per minute
// from the keep-alive schedule the policy maintains.

#include <cstdint>

#include "fault/injector.hpp"
#include "models/latency.hpp"
#include "obs/observer.hpp"
#include "sim/cost_model.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "trace/trace.hpp"

namespace pulse::sim {

struct EngineConfig {
  CostModel cost_model{};
  models::LatencyModel latency{};

  /// Keep the per-minute memory/cost series in the result (Figures 4/6b/7).
  /// Off by default: the 1000-run ensembles only need the totals.
  bool record_series = false;

  /// Use expected service times instead of sampled ones. Unit tests and the
  /// ideal-cost analysis use this for exact arithmetic.
  bool deterministic_latency = false;

  /// Seed for the latency-jitter stream (independent of trace generation).
  std::uint64_t seed = 1;

  /// Measure wall-clock time spent inside policy calls (Figure 9). Costs a
  /// couple of clock reads per invocation minute.
  bool measure_overhead = false;

  /// Keep per-function invocation/warm/cold/service-time/accuracy
  /// breakdowns in the result.
  bool record_per_function = false;

  /// Keep every invocation's service time (tail-latency analysis; memory
  /// cost is one double per invocation).
  bool record_service_samples = false;

  /// Draw each invocation's correctness as Bernoulli(variant accuracy)
  /// instead of crediting the expected accuracy directly. The ensemble
  /// means converge to the same values (the paper reports expectations);
  /// this models the per-request variance real inference datasets show.
  bool bernoulli_accuracy = false;

  /// Absolute keep-alive memory capacity, MB (0 = unlimited). When the
  /// schedule exceeds it at the end of a minute, the engine evicts random
  /// kept containers until it fits — the provider behaviour the paper's
  /// §III-A describes ("random functions/models are downgraded" under
  /// memory stress). Policies that flatten peaks themselves (PULSE) rarely
  /// trigger it.
  double memory_capacity_mb = 0.0;

  /// Fault injection (crashes, cold-start failures, SLO timeouts, memory
  /// pressure). All rates default to zero, in which case the run is
  /// bitwise-identical to one without any injector: fault decisions are
  /// hash-derived from FaultConfig::seed and consume no engine RNG state.
  fault::FaultConfig faults{};

  /// Observability context: optional event sink, metrics registry, and
  /// phase profiler (all non-owning; default fully disabled). Attaching
  /// any of them leaves RunResult bitwise identical — the layer observes,
  /// it never steers (tests/obs/obs_determinism_test.cpp is the gate).
  obs::Observer observer{};
};

class SimulationEngine {
 public:
  /// deployment/trace must outlive the engine. The deployment's function
  /// count must match the trace's.
  SimulationEngine(const Deployment& deployment, const trace::Trace& trace,
                   EngineConfig config = {});

  /// Replays the whole trace under `policy` and returns the run's metrics.
  /// The policy is used exclusively by this call (stateful policies must be
  /// fresh per run).
  [[nodiscard]] RunResult run(KeepAlivePolicy& policy);

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  const Deployment* deployment_;
  const trace::Trace* trace_;
  EngineConfig config_;
};

}  // namespace pulse::sim
