#pragma once
// Minute-resolution discrete-event simulation of a serverless platform
// serving ML inference under a pluggable keep-alive policy.
//
// Faithful to the paper's simulation methodology (§IV): the trace is
// replayed at minute resolution; invocations within a minute share the
// container state of that minute; the first invocation of a cold minute
// pays the cold-start penalty; keep-alive memory and cost accrue per minute
// from the keep-alive schedule the policy maintains.

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/injector.hpp"
#include "models/latency.hpp"
#include "obs/observer.hpp"
#include "sim/cost_model.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "trace/trace.hpp"

namespace pulse::sim {

struct EngineConfig {
  CostModel cost_model{};
  models::LatencyModel latency{};

  /// Keep the per-minute memory/cost series in the result (Figures 4/6b/7).
  /// Off by default: the 1000-run ensembles only need the totals.
  bool record_series = false;

  /// Use expected service times instead of sampled ones. Unit tests and the
  /// ideal-cost analysis use this for exact arithmetic.
  bool deterministic_latency = false;

  /// Seed for the latency-jitter stream (independent of trace generation).
  std::uint64_t seed = 1;

  /// Measure wall-clock time spent inside policy calls (Figure 9). Costs a
  /// couple of clock reads per invocation minute.
  bool measure_overhead = false;

  /// Keep per-function invocation/warm/cold/service-time/accuracy
  /// breakdowns in the result.
  bool record_per_function = false;

  /// Keep every invocation's service time (tail-latency analysis; memory
  /// cost is one double per invocation).
  bool record_service_samples = false;

  /// Draw each invocation's correctness as Bernoulli(variant accuracy)
  /// instead of crediting the expected accuracy directly. The ensemble
  /// means converge to the same values (the paper reports expectations);
  /// this models the per-request variance real inference datasets show.
  bool bernoulli_accuracy = false;

  /// Absolute keep-alive memory capacity, MB (0 = unlimited). When the
  /// schedule exceeds it at the end of a minute, the engine evicts random
  /// kept containers until it fits — the provider behaviour the paper's
  /// §III-A describes ("random functions/models are downgraded" under
  /// memory stress). Policies that flatten peaks themselves (PULSE) rarely
  /// trigger it.
  double memory_capacity_mb = 0.0;

  /// Fault injection (crashes, cold-start failures, SLO timeouts, memory
  /// pressure). All rates default to zero, in which case the run is
  /// bitwise-identical to one without any injector: fault decisions are
  /// hash-derived from FaultConfig::seed and consume no engine RNG state.
  fault::FaultConfig faults{};

  /// Observability context: optional event sink, metrics registry, and
  /// phase profiler (all non-owning; default fully disabled). Attaching
  /// any of them leaves RunResult bitwise identical — the layer observes,
  /// it never steers (tests/obs/obs_determinism_test.cpp is the gate).
  obs::Observer observer{};

  /// Emit one kMinuteSample event per simulated minute (value = keep-alive
  /// memory MB, variant = alive container count). The per-minute anchor the
  /// JSONL replayer (exp::replay_events) reconstructs cost curves from.
  /// Off by default: it adds duration() events per run.
  bool emit_minute_samples = false;

  /// Keep per-function cold-start/eviction tallies and fold the top K
  /// functions (by count, ties broken by ascending catalog-global id) into
  /// the metrics registry at finish as engine.topk.* counters. 0 = off.
  /// Combine with ObsConfig::sample_every to keep attached cost flat: the
  /// tallies are plain array increments, no events are emitted.
  std::size_t top_k_function_metrics = 0;

  /// Derive per-invocation latency jitter, Bernoulli accuracy draws, and
  /// capacity-eviction victim picks by hashing (seed, function, minute,
  /// invocation) — the FaultInjector discipline applied to the engine's own
  /// stochastic streams — instead of consuming the run-wide sequential
  /// Pcg32 streams. A function's samples then depend only on its own
  /// coordinates, never on which other functions share the engine, which is
  /// what makes sharded ClusterEngine results shard-count invariant.
  /// Default off: the sequential streams keep historical golden fixtures
  /// bitwise identical.
  bool hashed_rng = false;

  /// Optional catalog-global function ids, one per local function. When a
  /// cluster shard replays a sub-trace, local function f stands for global
  /// function (*global_ids)[f]; fault-injection hashing, hashed RNG streams
  /// and trace-event coordinates all use the global id, so fault patterns,
  /// samples, and events are those of the full catalog regardless of the
  /// partitioning. Must outlive the engine. nullptr = identity mapping.
  const std::vector<trace::FunctionId>* global_ids = nullptr;
};

/// Snapshot of a SteppedRun at a minute boundary: schedule, capacity,
/// partial result, memory record, the sequential RNG positions, and the
/// policy's own state. Everything a bit-exact replay needs — hashed draws
/// (EngineConfig::hashed_rng) and fault decisions are pure functions of
/// coordinates and need no saved position. Move-only (it owns the policy
/// snapshot); only valid for the SteppedRun that produced it.
struct RunCheckpoint {
  trace::Minute minute = 0;
  double memory_capacity_mb = 0.0;
  RunResult result;
  KeepAliveSchedule schedule;
  std::vector<double> memory_record;
  util::Pcg32 latency_rng;
  util::Pcg32 accuracy_rng;
  util::Pcg32 eviction_rng;
  std::unique_ptr<PolicyCheckpoint> policy;
};

/// Minute-stepped execution of one simulation run.
///
/// Exactly the replay SimulationEngine::run performs, exposed as an object
/// that can be advanced in minute-granular slices so a coordinating layer
/// (the sharded ClusterEngine) can interleave several runs and adjust
/// capacity quotas at epoch barriers. SimulationEngine::run is implemented
/// on top of this class: a SteppedRun driven straight to the end produces a
/// bitwise-identical RunResult.
///
/// deployment/trace/policy must outlive the run; the policy is used
/// exclusively by this object.
class SteppedRun {
 public:
  SteppedRun(const Deployment& deployment, const trace::Trace& trace, EngineConfig config,
             KeepAlivePolicy& policy);
  ~SteppedRun();

  SteppedRun(const SteppedRun&) = delete;
  SteppedRun& operator=(const SteppedRun&) = delete;

  /// Simulates minutes [next_minute(), min(end, duration())). No-op when
  /// the run is already past `end`.
  void run_until(trace::Minute end);

  /// First minute not yet simulated (== duration() when the replay is done).
  [[nodiscard]] trace::Minute next_minute() const noexcept { return next_minute_; }

  [[nodiscard]] trace::Minute duration() const noexcept;

  /// Adjusts the keep-alive capacity for minutes not yet simulated (the
  /// cluster capacity market re-quotas shards between epochs). 0 = unlimited.
  void set_memory_capacity_mb(double mb) noexcept { config_.memory_capacity_mb = mb; }
  [[nodiscard]] double memory_capacity_mb() const noexcept {
    return config_.memory_capacity_mb;
  }

  /// Counters and totals accumulated so far (downgrade/guard counters are
  /// only folded in by finish()). Valid until finish() is called.
  [[nodiscard]] const RunResult& partial() const noexcept { return result_; }

  /// Keep-alive memory recorded at a simulated minute t (0 outside
  /// [0, next_minute())) — the pressure signal the capacity market reads.
  [[nodiscard]] double keepalive_memory_mb(trace::Minute t) const noexcept;

  /// Runs any remaining minutes, folds end-of-run counters and metrics, and
  /// returns the final result. Call at most once.
  RunResult finish();

  /// finish(), but stopping at minute `end` instead of the trace's full
  /// duration. The online serving mode runs over a pre-sized horizon trace
  /// and closes the run at the last minute the stream actually delivered;
  /// a batch run over a trace of duration `end` produces the identical
  /// result. Call at most once (mutually exclusive with finish()).
  RunResult finish_at(trace::Minute end);

  /// Snapshot of the run at the current minute boundary. restore() on this
  /// same SteppedRun rolls back to it and replay_until() re-executes the
  /// rolled-back span bit-exactly — the cluster engine's crash-recovery
  /// path, and the seed for long-run resumability. Cost is O(state): one
  /// copy of the schedule, result, memory record and policy state.
  [[nodiscard]] RunCheckpoint checkpoint() const;

  /// Rolls the run back to `snapshot` (which must come from this run).
  /// Throws std::logic_error once finish() was called.
  void restore(const RunCheckpoint& snapshot);

  /// run_until(end) with all observability emission suppressed: a replay
  /// after restore() re-executes minutes whose events and metrics the
  /// original pass already emitted, so it must stay silent to keep sinks
  /// and registries single-counted.
  void replay_until(trace::Minute end);

  /// Shard crash at minute t: every container alive at t — and everything
  /// scheduled after it — is lost with the shard. Counts the alive
  /// containers as crash evictions and returns how many were lost.
  std::uint64_t lose_warm_pool(trace::Minute t);

  /// Advances through [next_minute(), min(end, duration())) as a dead-shard
  /// outage: every arrival fails, no memory is held and no cost accrues,
  /// but minute-indexed policy bookkeeping (end_of_minute) stays aligned
  /// with the clock. Returns the failed invocations added.
  std::uint64_t run_outage(trace::Minute end);

 private:
  void step_minute();
  void fold_top_k(obs::MetricsRegistry& m) const;

  /// Pre-resolved engine.* handle bundle (metrics_registry.hpp): every name
  /// is looked up once at construction; finish() folds the run's aggregates
  /// through plain pointer adds. The peak gauge registers as GaugeMerge::
  /// kMax so ensemble merges take the max across slots instead of summing
  /// per-slot peaks.
  struct MetricsHandles {
    obs::CounterHandle runs;
    obs::CounterHandle invocations;
    obs::CounterHandle warm_starts;
    obs::CounterHandle cold_starts;
    obs::CounterHandle downgrades;
    obs::CounterHandle capacity_evictions;
    obs::CounterHandle crash_evictions;
    obs::CounterHandle failed_invocations;
    obs::CounterHandle retries;
    obs::CounterHandle timeouts;
    obs::CounterHandle degraded_minutes;
    obs::CounterHandle guard_incidents;
    obs::GaugeHandle service_time_s;
    obs::GaugeHandle keepalive_cost_usd;
    obs::GaugeHandle peak_keepalive_memory_mb;  // kMax
  };

  const Deployment* deployment_;
  const trace::Trace* trace_;
  EngineConfig config_;
  KeepAlivePolicy* policy_;

  RunResult result_;
  KeepAliveSchedule schedule_;
  std::vector<std::pair<trace::FunctionId, std::size_t>> kept_buffer_;
  std::vector<double> memory_record_;
  std::unique_ptr<MemoryHistory> history_;
  util::Pcg32 latency_rng_;
  util::Pcg32 accuracy_rng_;
  util::Pcg32 eviction_rng_;
  fault::FaultInjector injector_;
  bool faults_on_ = false;
  util::IntHistogram* alive_hist_ = nullptr;
  MetricsHandles metric_handles_;
  /// Per-function tallies for EngineConfig::top_k_function_metrics (empty
  /// when the knob is off or no registry is attached).
  std::vector<std::uint64_t> fn_cold_starts_;
  std::vector<std::uint64_t> fn_evictions_;
  trace::Minute next_minute_ = 0;
  bool finished_ = false;
};

class SimulationEngine {
 public:
  /// deployment/trace must outlive the engine. The deployment's function
  /// count must match the trace's.
  SimulationEngine(const Deployment& deployment, const trace::Trace& trace,
                   EngineConfig config = {});

  /// Replays the whole trace under `policy` and returns the run's metrics.
  /// The policy is used exclusively by this call (stateful policies must be
  /// fresh per run).
  [[nodiscard]] RunResult run(KeepAlivePolicy& policy);

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  const Deployment* deployment_;
  const trace::Trace* trace_;
  EngineConfig config_;
};

}  // namespace pulse::sim
