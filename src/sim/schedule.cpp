#include "sim/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace pulse::sim {

KeepAliveSchedule::KeepAliveSchedule(const Deployment& deployment, trace::Minute duration)
    : deployment_(&deployment), duration_(duration) {
  if (duration < 0) throw std::invalid_argument("KeepAliveSchedule: negative duration");
  slots_.assign(deployment.function_count(),
                std::vector<std::int16_t>(static_cast<std::size_t>(duration), kNoVariant));
}

int KeepAliveSchedule::variant_at(trace::FunctionId f, trace::Minute t) const {
  if (t < 0 || t >= duration_) return kNoVariant;
  return slots_.at(f)[static_cast<std::size_t>(t)];
}

void KeepAliveSchedule::set(trace::FunctionId f, trace::Minute t, int variant) {
  auto& row = slots_.at(f);
  if (t < 0 || t >= duration_) return;
  if (variant != kNoVariant) {
    const auto count = deployment_->family_of(f).variant_count();
    if (variant < 0 || static_cast<std::size_t>(variant) >= count) {
      throw std::out_of_range("KeepAliveSchedule::set: variant index out of range");
    }
  }
  row[static_cast<std::size_t>(t)] = static_cast<std::int16_t>(variant);
}

void KeepAliveSchedule::fill(trace::FunctionId f, trace::Minute from, trace::Minute to,
                             int variant) {
  from = std::max<trace::Minute>(from, 0);
  to = std::min(to, duration_);
  for (trace::Minute t = from; t < to; ++t) set(f, t, variant);
}

void KeepAliveSchedule::clear_from(trace::FunctionId f, trace::Minute from) {
  from = std::max<trace::Minute>(from, 0);
  auto& row = slots_.at(f);
  for (trace::Minute t = from; t < duration_; ++t) {
    row[static_cast<std::size_t>(t)] = kNoVariant;
  }
}

std::optional<int> KeepAliveSchedule::downgrade_from(trace::FunctionId f, trace::Minute t) {
  const int current = variant_at(f, t);
  if (current == kNoVariant) return std::nullopt;
  auto& row = slots_.at(f);
  for (trace::Minute m = t; m < duration_; ++m) {
    auto& slot = row[static_cast<std::size_t>(m)];
    if (slot == kNoVariant) break;  // end of the current keep-alive window
    slot = static_cast<std::int16_t>(slot > 0 ? slot - 1 : kNoVariant);
  }
  return current;
}

void KeepAliveSchedule::evict_from(trace::FunctionId f, trace::Minute t) {
  if (t < 0 || t >= duration_) return;
  auto& row = slots_.at(f);
  for (trace::Minute m = t; m < duration_; ++m) {
    auto& slot = row[static_cast<std::size_t>(m)];
    if (slot == kNoVariant) break;
    slot = kNoVariant;
  }
}

double KeepAliveSchedule::memory_at(trace::Minute t) const {
  if (t < 0 || t >= duration_) return 0.0;
  double total = 0.0;
  for (trace::FunctionId f = 0; f < slots_.size(); ++f) {
    const int v = slots_[f][static_cast<std::size_t>(t)];
    if (v != kNoVariant) {
      total += deployment_->family_of(f).variant(static_cast<std::size_t>(v)).memory_mb;
    }
  }
  return total;
}

std::vector<std::pair<trace::FunctionId, std::size_t>> KeepAliveSchedule::kept_alive_at(
    trace::Minute t) const {
  std::vector<std::pair<trace::FunctionId, std::size_t>> out;
  if (t < 0 || t >= duration_) return out;
  for (trace::FunctionId f = 0; f < slots_.size(); ++f) {
    const int v = slots_[f][static_cast<std::size_t>(t)];
    if (v != kNoVariant) out.emplace_back(f, static_cast<std::size_t>(v));
  }
  return out;
}

}  // namespace pulse::sim
