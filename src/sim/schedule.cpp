#include "sim/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pulse::sim {

KeepAliveSchedule::KeepAliveSchedule(const Deployment& deployment, trace::Minute duration)
    : deployment_(&deployment), duration_(duration), functions_(deployment.function_count()) {
  if (duration < 0) throw std::invalid_argument("KeepAliveSchedule: negative duration");
  const auto minutes = static_cast<std::size_t>(duration);
  grid_.assign(minutes * functions_, static_cast<std::int16_t>(kNoVariant));
  count_.assign(minutes, 0);
  exact_.assign(minutes, 0);
  cache_.assign(minutes, 0.0);   // an empty minute sums to exactly 0.0
  dirty_.assign(minutes, 0);
  horizon_.assign(functions_, 0);
  build_variant_tables();
}

void KeepAliveSchedule::build_variant_tables() {
  max_variants_ = 0;
  variant_count_.assign(functions_, 0);
  for (std::size_t f = 0; f < functions_; ++f) {
    const std::size_t n = deployment_->family_of(f).variant_count();
    variant_count_[f] = static_cast<std::uint32_t>(n);
    max_variants_ = std::max(max_variants_, n);
  }

  var_mem_.assign(functions_ * max_variants_, 0.0);
  var_units_.assign(functions_ * max_variants_, 0);

  // The exact path needs every variant memory expressible as an integer
  // count of 2^-kUnitShift MB units, with headroom for the full-fleet sum.
  // Anything outside that envelope (no 128-bit integers, absurd sizes,
  // sub-2^-8 MB values with full mantissas) disables it; correctness is
  // unaffected because memory_exceeds then always uses the row scan.
  exact_ok_ = sizeof(ExactUnits) >= 16 && functions_ < (std::size_t{1} << 24);
  for (std::size_t f = 0; f < functions_; ++f) {
    const auto& family = deployment_->family_of(f);
    for (std::size_t v = 0; v < variant_count_[f]; ++v) {
      const double mb = family.variant(v).memory_mb;
      var_mem_[f * max_variants_ + v] = mb;
      if (!(mb >= 0.0) || !std::isfinite(mb) || mb >= std::ldexp(1.0, 30)) {
        exact_ok_ = false;
        continue;
      }
      if (mb == 0.0) continue;
      int exp2 = 0;
      const double frac = std::frexp(mb, &exp2);
      const auto mant = static_cast<std::int64_t>(std::llround(std::ldexp(frac, 53)));
      const int shift = exp2 - 53 + kUnitShift;
      if (shift >= 0) {
        var_units_[f * max_variants_ + v] = static_cast<ExactUnits>(mant) << shift;
      } else if (-shift < 63 && (mant & ((std::int64_t{1} << -shift) - 1)) == 0) {
        var_units_[f * max_variants_ + v] = static_cast<ExactUnits>(mant >> -shift);
      } else {
        exact_ok_ = false;
      }
    }
  }
}

void KeepAliveSchedule::check_function(trace::FunctionId f) const {
  if (f >= functions_) {
    throw std::out_of_range("KeepAliveSchedule: function index out of range");
  }
}

void KeepAliveSchedule::set(trace::FunctionId f, trace::Minute t, int variant) {
  if (t < 0 || t >= duration_) return;  // out-of-horizon writes are ignored
  check_function(f);
  if (variant != kNoVariant) {
    if (variant < 0 || static_cast<std::uint32_t>(variant) >= variant_count_[f]) {
      throw std::out_of_range("KeepAliveSchedule::set: variant index out of range");
    }
    horizon_[f] = std::max(horizon_[f], t + 1);
  }
  write_slot(f, static_cast<std::size_t>(t), static_cast<std::int16_t>(variant));
}

void KeepAliveSchedule::fill(trace::FunctionId f, trace::Minute from, trace::Minute to,
                             int variant) {
  from = std::max<trace::Minute>(from, 0);
  to = std::min(to, duration_);
  if (from >= to) return;
  check_function(f);
  if (variant != kNoVariant) {
    if (variant < 0 || static_cast<std::uint32_t>(variant) >= variant_count_[f]) {
      throw std::out_of_range("KeepAliveSchedule::set: variant index out of range");
    }
    horizon_[f] = std::max(horizon_[f], to);
  }
  const auto v = static_cast<std::int16_t>(variant);
  for (trace::Minute t = from; t < to; ++t) write_slot(f, static_cast<std::size_t>(t), v);
}

void KeepAliveSchedule::clear_from(trace::FunctionId f, trace::Minute from) {
  check_function(f);
  from = std::max<trace::Minute>(from, 0);
  const trace::Minute end = std::min(horizon_[f], duration_);
  for (trace::Minute t = from; t < end; ++t) {
    write_slot(f, static_cast<std::size_t>(t), static_cast<std::int16_t>(kNoVariant));
  }
  horizon_[f] = std::min(horizon_[f], from);
}

std::optional<int> KeepAliveSchedule::downgrade_from(trace::FunctionId f, trace::Minute t) {
  const int current = variant_at(f, t);
  if (current == kNoVariant) return std::nullopt;
  for (trace::Minute m = t; m < duration_; ++m) {
    const std::int16_t v = grid_[static_cast<std::size_t>(m) * functions_ + f];
    if (v == kNoVariant) break;  // end of the current keep-alive window
    write_slot(f, static_cast<std::size_t>(m),
               static_cast<std::int16_t>(v > 0 ? v - 1 : kNoVariant));
  }
  return current;
}

void KeepAliveSchedule::evict_from(trace::FunctionId f, trace::Minute t) {
  if (t < 0 || t >= duration_) return;
  check_function(f);
  for (trace::Minute m = t; m < duration_; ++m) {
    const std::int16_t v = grid_[static_cast<std::size_t>(m) * functions_ + f];
    if (v == kNoVariant) break;
    write_slot(f, static_cast<std::size_t>(m), static_cast<std::int16_t>(kNoVariant));
  }
}

double KeepAliveSchedule::recompute(std::size_t ti) const {
  // Bitwise-compatibility contract: identical addends in identical
  // (ascending f) order as the historical O(F) scan, plain double adds.
  double total = 0.0;
  if (count_[ti] != 0) {
    const std::int16_t* row = grid_.data() + ti * functions_;
    for (std::size_t f = 0; f < functions_; ++f) {
      const std::int16_t v = row[f];
      if (v != kNoVariant) {
        total += var_mem_[f * max_variants_ + static_cast<std::size_t>(v)];
      }
    }
  }
  cache_[ti] = total;
  dirty_[ti] = 0;
  return total;
}

bool KeepAliveSchedule::memory_exceeds(trace::Minute t, double capacity_mb) const {
  if (t < 0 || t >= duration_) return 0.0 > capacity_mb;
  const auto ti = static_cast<std::size_t>(t);
  if (!dirty_[ti]) return cache_[ti] > capacity_mb;
  if (count_[ti] == 0) {
    cache_[ti] = 0.0;
    dirty_[ti] = 0;
    return 0.0 > capacity_mb;
  }
  if (exact_ok_) {
    // The legacy double sum L differs from the exact total S by at most
    // count * ulp(S)/2 (positive addends, monotone partial sums), and the
    // int128 -> double conversion by at most another ulp. The margin below
    // is over 4x that bound, so when capacity_mb falls outside
    // [approx - margin, approx + margin] the comparison against L is
    // already decided; only a capacity inside that sliver (~1e-12
    // relative) needs the row scan.
    const double approx = std::ldexp(static_cast<double>(exact_[ti]), -kUnitShift);
    const double margin =
        std::ldexp(approx * static_cast<double>(count_[ti] + 4), -50);
    if (approx - margin > capacity_mb) return true;
    if (approx + margin < capacity_mb) return false;
  }
  return recompute(ti) > capacity_mb;
}

std::vector<std::pair<trace::FunctionId, std::size_t>> KeepAliveSchedule::kept_alive_at(
    trace::Minute t) const {
  std::vector<std::pair<trace::FunctionId, std::size_t>> out;
  kept_alive_at(t, out);
  return out;
}

void KeepAliveSchedule::kept_alive_at(
    trace::Minute t, std::vector<std::pair<trace::FunctionId, std::size_t>>& out) const {
  out.clear();
  out.reserve(alive_count_at(t));
  for_each_alive(t, [&out](trace::FunctionId f, std::size_t v) { out.emplace_back(f, v); });
}

}  // namespace pulse::sim
