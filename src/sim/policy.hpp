#pragma once
// The pluggable keep-alive policy interface.
//
// The engine drives the trace minute by minute. For every minute in which a
// function is invoked, it calls on_invocation() once (multiple invocations
// of the same function within one minute share the container). After all of
// a minute's invocations it calls end_of_minute(), where cross-function
// policies (PULSE's global optimizer, MILP) flatten keep-alive memory peaks.

#include <memory>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "sim/schedule.hpp"
#include "trace/trace.hpp"

namespace pulse::sim {

/// Opaque snapshot of a policy's mutable state. Each stateful policy
/// derives its own snapshot type in its implementation file; the engine
/// only moves these around (see KeepAlivePolicy::checkpoint).
class PolicyCheckpoint {
 public:
  virtual ~PolicyCheckpoint() = default;
};

/// Read-only view of the per-minute keep-alive memory history that the
/// engine has recorded so far. memory_at(t) is valid for t < now; the
/// current minute's (possibly still mutating) memory comes from the
/// schedule.
class MemoryHistory {
 public:
  virtual ~MemoryHistory() = default;

  /// Recorded keep-alive memory (MB) at a past minute; 0 before the trace.
  [[nodiscard]] virtual double memory_at(trace::Minute t) const = 0;

  /// First minute not yet recorded (== the current minute).
  [[nodiscard]] virtual trace::Minute now() const = 0;
};

class KeepAlivePolicy {
 public:
  virtual ~KeepAlivePolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the first minute. `schedule` is empty at this
  /// point; oracle-style baselines may pre-fill it here.
  virtual void initialize(const Deployment& deployment, const trace::Trace& trace,
                          KeepAliveSchedule& schedule) {
    (void)deployment;
    (void)trace;
    (void)schedule;
  }

  /// Function f was invoked at minute t (the engine has already resolved
  /// warm/cold for this minute). The policy updates the keep-alive plan —
  /// typically minutes (t, t+10].
  virtual void on_invocation(trace::FunctionId f, trace::Minute t,
                             KeepAliveSchedule& schedule) = 0;

  /// Called after all invocations of minute t. Cross-function policies
  /// inspect schedule.memory_at(t) against `history` and may downgrade.
  virtual void end_of_minute(trace::Minute t, KeepAliveSchedule& schedule,
                             const MemoryHistory& history) {
    (void)t;
    (void)schedule;
    (void)history;
  }

  /// Variant that serves a cold start of f at minute t (no container was
  /// alive). Default: the highest-quality variant, matching the provider
  /// behaviour the baselines deploy.
  [[nodiscard]] virtual std::size_t cold_start_variant(trace::FunctionId f, trace::Minute t,
                                                       const Deployment& deployment) const {
    (void)t;
    return deployment.family_of(f).highest_index();
  }

  /// Total variant downgrades performed so far (PULSE's global optimizer
  /// reports these; others return 0).
  [[nodiscard]] virtual std::uint64_t downgrade_count() const { return 0; }

  /// Faults absorbed by a guarding wrapper (fault::GuardedPolicy reports
  /// the incidents it caught; plain policies return 0). The engine copies
  /// this into RunResult::guard_incidents.
  [[nodiscard]] virtual std::uint64_t incident_count() const { return 0; }

  /// Snapshot of every piece of state this policy mutates after
  /// initialize(). SteppedRun::checkpoint() packages it with the engine
  /// state so a cluster shard can be rolled back and replayed bit-exactly
  /// after a crash. Policies whose behaviour is fixed once initialize() ran
  /// (fixed windows, oracles, pure hash draws) keep the default: nullptr
  /// means "nothing to restore".
  [[nodiscard]] virtual std::unique_ptr<PolicyCheckpoint> checkpoint() const {
    return nullptr;
  }

  /// Restores state captured by checkpoint() on this same policy instance
  /// (nullptr restores the stateless default). Stateful overrides throw
  /// std::invalid_argument when handed a snapshot of another policy type.
  virtual void restore(const PolicyCheckpoint* snapshot) { (void)snapshot; }

  /// Attaches the observability context (nullptr = disabled, the default).
  /// The engine calls this before initialize(); wrapper policies forward to
  /// their inner policy. The observer must outlive the policy's use.
  virtual void attach_observer(const obs::Observer* observer) { obs_ = observer; }

 protected:
  /// Sink for typed events; nullptr when tracing is off. Guard emission on
  /// this pointer so disabled runs never construct a TraceEvent.
  [[nodiscard]] obs::TraceSink* sink() const noexcept { return obs_ ? obs_->sink : nullptr; }
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return obs_ ? obs_->metrics : nullptr;
  }
  [[nodiscard]] obs::PhaseProfiler* profiler() const noexcept {
    return obs_ ? obs_->profiler : nullptr;
  }
  /// Raw observer pointer, for forwarding to helpers (e.g. the PULSE
  /// global optimizer) that hold their own reference. nullptr = disabled.
  [[nodiscard]] const obs::Observer* observer() const noexcept { return obs_; }

 private:
  const obs::Observer* obs_ = nullptr;
};

}  // namespace pulse::sim
