#include "sim/ensemble.hpp"

namespace pulse::sim {

double EnsembleResult::mean_service_time_s() const {
  return stats_of([](const RunResult& r) { return r.total_service_time_s; }).mean();
}

double EnsembleResult::mean_keepalive_cost_usd() const {
  return stats_of([](const RunResult& r) { return r.total_keepalive_cost_usd; }).mean();
}

double EnsembleResult::mean_accuracy_pct() const {
  return stats_of([](const RunResult& r) { return r.average_accuracy_pct(); }).mean();
}

double EnsembleResult::mean_overhead_s() const {
  return stats_of([](const RunResult& r) { return r.policy_overhead_s; }).mean();
}

double EnsembleResult::mean_warm_fraction() const {
  return stats_of([](const RunResult& r) { return r.warm_start_fraction(); }).mean();
}

EnsembleResult run_ensemble(const models::ModelZoo& zoo, const trace::Trace& trace,
                            const PolicyFactory& factory, const EnsembleConfig& config) {
  EnsembleResult result;
  result.runs.resize(config.runs);

  util::ThreadPool pool(config.threads);
  // One EngineConfig copy per worker task, not per run: only the seed
  // differs between runs, so each task slot mutates its own copy in place.
  std::vector<EngineConfig> task_config(pool.task_slot_count(), config.engine);

  // Observability across workers rides the same per-slot machinery: each
  // slot writes its own registry/profiler (no synchronization, TSan-clean)
  // and the user's instances receive the merged totals after the pool has
  // joined. A shared TraceSink is passed through as-is — the provided sinks
  // are internally synchronized.
  const obs::Observer user_obs = config.engine.observer;
  std::vector<obs::MetricsRegistry> slot_metrics(
      user_obs.metrics != nullptr ? pool.task_slot_count() : 0);
  std::vector<obs::PhaseProfiler> slot_profilers(
      user_obs.profiler != nullptr ? pool.task_slot_count() : 0);

  // Lock-free event transport: one SPSC lane per worker slot in front of
  // the user's sink, drained by the collector's background thread. Workers
  // never touch the sink's mutex, and each run keys its sampling stream by
  // run index, so sampling decisions and event totals are thread-count
  // invariant (see obs/collector.hpp for the full determinism contract).
  std::unique_ptr<obs::EventCollector> collector;
  if (user_obs.sink != nullptr && config.lock_free_sink) {
    collector = std::make_unique<obs::EventCollector>(*user_obs.sink, pool.task_slot_count(),
                                                      config.obs);
  }

  for (std::size_t slot = 0; slot < pool.task_slot_count(); ++slot) {
    if (user_obs.metrics != nullptr) task_config[slot].observer.metrics = &slot_metrics[slot];
    if (user_obs.profiler != nullptr) {
      task_config[slot].observer.profiler = &slot_profilers[slot];
    }
    if (collector) task_config[slot].observer.sink = &collector->lane(slot);
  }

  pool.parallel_for_slotted(config.runs, [&](std::size_t slot, std::size_t i) {
    // Per-run RNG stream: the deployment depends only on (seed, i).
    util::Pcg32 assign_rng(config.seed + i, /*stream=*/i * 2 + 1);
    const Deployment deployment =
        Deployment::random(zoo, trace.function_count(), assign_rng);

    EngineConfig& engine_config = task_config[slot];
    engine_config.seed = config.seed * 1000003 + i;
    if (collector) collector->lane(slot).begin_stream(i);

    SimulationEngine engine(deployment, trace, engine_config);
    auto policy = factory();
    result.runs[i] = engine.run(*policy);
  });

  // The pool has joined (producers quiesced): drain the lanes and, for
  // canonical sinks, feed the retained tails downstream before anything
  // reads the sink.
  if (collector) collector->finish();

  for (const auto& m : slot_metrics) user_obs.metrics->merge(m);
  for (const auto& p : slot_profilers) user_obs.profiler->merge(p);
  if (user_obs.metrics != nullptr) result.metrics = user_obs.metrics->snapshot();

  return result;
}

}  // namespace pulse::sim
