#include "sim/ensemble.hpp"

namespace pulse::sim {

double EnsembleResult::mean_service_time_s() const {
  return stats_of([](const RunResult& r) { return r.total_service_time_s; }).mean();
}

double EnsembleResult::mean_keepalive_cost_usd() const {
  return stats_of([](const RunResult& r) { return r.total_keepalive_cost_usd; }).mean();
}

double EnsembleResult::mean_accuracy_pct() const {
  return stats_of([](const RunResult& r) { return r.average_accuracy_pct(); }).mean();
}

double EnsembleResult::mean_overhead_s() const {
  return stats_of([](const RunResult& r) { return r.policy_overhead_s; }).mean();
}

double EnsembleResult::mean_warm_fraction() const {
  return stats_of([](const RunResult& r) { return r.warm_start_fraction(); }).mean();
}

util::RunningStats EnsembleResult::stats_of(
    const std::function<double(const RunResult&)>& metric) const {
  util::RunningStats stats;
  for (const auto& r : runs) stats.add(metric(r));
  return stats;
}

EnsembleResult run_ensemble(const models::ModelZoo& zoo, const trace::Trace& trace,
                            const PolicyFactory& factory, const EnsembleConfig& config) {
  EnsembleResult result;
  result.runs.resize(config.runs);

  util::ThreadPool pool(config.threads);
  pool.parallel_for(config.runs, [&](std::size_t i) {
    // Per-run RNG stream: the deployment depends only on (seed, i).
    util::Pcg32 assign_rng(config.seed + i, /*stream=*/i * 2 + 1);
    const Deployment deployment =
        Deployment::random(zoo, trace.function_count(), assign_rng);

    EngineConfig engine_config = config.engine;
    engine_config.seed = config.seed * 1000003 + i;

    SimulationEngine engine(deployment, trace, engine_config);
    auto policy = factory();
    result.runs[i] = engine.run(*policy);
  });

  return result;
}

}  // namespace pulse::sim
