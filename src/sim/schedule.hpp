#pragma once
// The keep-alive schedule: for every function and minute, which model
// variant (if any) is kept alive. Policies write it; the engine reads it to
// resolve warm/cold starts and to account keep-alive memory and cost.
//
// Storage is minute-major (one contiguous row of variant slots per minute),
// so the engine's per-minute scans are cache-linear, and every mutation
// keeps per-minute aggregates incrementally up to date:
//   - alive_count_at(t) is O(1),
//   - memory_at(t) is O(1) while the minute is clean and one row scan after
//     a mutation (it is memoized in legacy ascending-function summation
//     order, so the returned double is bit-identical to the historical
//     O(F) implementation — the golden-fixture tests rely on this),
//   - memory_exceeds(t, cap) is O(1) in almost all cases: an exact
//     fixed-point integer total decides the comparison without touching
//     floating-point rounding, falling back to the row scan only when the
//     capacity lies inside the (sub-ULP-scale) rounding margin.
// See docs/PERFORMANCE.md for the full complexity contract.
//
// The schedule is not thread-safe: each simulation run owns its own
// instance (memory_at memoizes through mutable members).

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/deployment.hpp"
#include "trace/trace.hpp"

namespace pulse::sim {

/// Sentinel for "no container kept alive".
constexpr int kNoVariant = -1;

class KeepAliveSchedule {
 public:
  /// The deployment must outlive the schedule.
  KeepAliveSchedule(const Deployment& deployment, trace::Minute duration);

  [[nodiscard]] trace::Minute duration() const noexcept { return duration_; }
  [[nodiscard]] std::size_t function_count() const noexcept { return functions_; }
  [[nodiscard]] const Deployment& deployment() const noexcept { return *deployment_; }

  /// Variant kept alive for f at minute t; kNoVariant when none (or t is
  /// outside the horizon).
  [[nodiscard]] int variant_at(trace::FunctionId f, trace::Minute t) const {
    if (t < 0 || t >= duration_) return kNoVariant;
    check_function(f);
    return grid_[static_cast<std::size_t>(t) * functions_ + f];
  }

  /// true when any container of f is alive at t.
  [[nodiscard]] bool is_alive(trace::FunctionId f, trace::Minute t) const {
    return variant_at(f, t) != kNoVariant;
  }

  /// Number of variants in f's model family (cached; O(1), no pointer
  /// chase through the deployment).
  [[nodiscard]] std::size_t variant_count_of(trace::FunctionId f) const {
    check_function(f);
    return variant_count_[f];
  }

  /// Sets the kept-alive variant for one minute. Out-of-horizon minutes are
  /// ignored (policies schedule t+1..t+10 near the trace end) — checked
  /// before anything else, so an out-of-horizon write never throws. Throws
  /// on a function or variant index outside the deployment.
  void set(trace::FunctionId f, trace::Minute t, int variant);

  void clear(trace::FunctionId f, trace::Minute t) { set(f, t, kNoVariant); }

  /// Fills [from, to) with `variant` (clipped to the horizon).
  void fill(trace::FunctionId f, trace::Minute from, trace::Minute to, int variant);

  /// Clears every scheduled minute of f at or after `from`. Bounded by f's
  /// scheduled horizon, not the trace duration: clearing an idle tail is
  /// O(1).
  void clear_from(trace::FunctionId f, trace::Minute from);

  /// Downgrades f by one variant for the contiguous scheduled stretch
  /// starting at t (the function's current keep-alive window): variant v
  /// becomes v-1; the lowest variant becomes "not kept alive". Minutes after
  /// the first gap — i.e. keep-alive windows scheduled by later invocations —
  /// are untouched. Returns the variant index that was scheduled at minute t
  /// before downgrading, or nullopt (and does nothing) when nothing is
  /// scheduled at t.
  std::optional<int> downgrade_from(trace::FunctionId f, trace::Minute t);

  /// Evicts f's container entirely for the contiguous scheduled stretch
  /// starting at t (capacity-pressure eviction: the platform kills the
  /// container regardless of variant). No-op when nothing is scheduled at t.
  void evict_from(trace::FunctionId f, trace::Minute t);

  /// Total keep-alive memory (MB) across functions at minute t. O(1) while
  /// minute t is unchanged since the last query; one row scan otherwise.
  /// The value is always the ascending-function-order double sum the
  /// historical implementation produced (bitwise).
  [[nodiscard]] double memory_at(trace::Minute t) const {
    if (t < 0 || t >= duration_) return 0.0;
    const auto ti = static_cast<std::size_t>(t);
    if (!dirty_[ti]) return cache_[ti];
    return recompute(ti);
  }

  /// Containers alive at minute t. O(1) (incrementally maintained).
  [[nodiscard]] std::size_t alive_count_at(trace::Minute t) const noexcept {
    if (t < 0 || t >= duration_) return 0;
    return static_cast<std::size_t>(count_[static_cast<std::size_t>(t)]);
  }

  /// Exactly `memory_at(t) > capacity_mb`, but usually without recomputing
  /// the floating-point sum: an exact integer fixed-point total brackets
  /// the legacy double sum tightly enough to decide almost every
  /// comparison in O(1). The engine's capacity-eviction loop runs on this.
  [[nodiscard]] bool memory_exceeds(trace::Minute t, double capacity_mb) const;

  /// One past the last minute at which f might be scheduled (an upper
  /// bound, maintained incrementally). Slots at or beyond it are all
  /// kNoVariant; callers walking a function's tail can stop here.
  [[nodiscard]] trace::Minute scheduled_end(trace::FunctionId f) const {
    check_function(f);
    return horizon_[f];
  }

  /// Visits (function, variant) for every container alive at minute t, in
  /// ascending function order, without allocating. The visitor may evict or
  /// downgrade the function currently being visited (the engine's crash
  /// loop does), but must not otherwise mutate minute t mid-iteration.
  template <typename Visitor>
  void for_each_alive(trace::Minute t, Visitor&& visit) const {
    if (t < 0 || t >= duration_) return;
    const auto ti = static_cast<std::size_t>(t);
    if (count_[ti] == 0) return;
    const std::int16_t* row = grid_.data() + ti * functions_;
    for (std::size_t f = 0; f < functions_; ++f) {
      if (row[f] != kNoVariant) {
        visit(static_cast<trace::FunctionId>(f), static_cast<std::size_t>(row[f]));
      }
    }
  }

  /// (function, variant) pairs kept alive at minute t.
  [[nodiscard]] std::vector<std::pair<trace::FunctionId, std::size_t>> kept_alive_at(
      trace::Minute t) const;

  /// Allocation-free variant: fills `out` (cleared first) with the pairs
  /// kept alive at t. Reuse one buffer across minutes in hot loops.
  void kept_alive_at(trace::Minute t,
                     std::vector<std::pair<trace::FunctionId, std::size_t>>& out) const;

 private:
#if defined(__SIZEOF_INT128__)
  using ExactUnits = unsigned __int128;
#else
  using ExactUnits = std::uint64_t;  // exact fast path stays disabled
#endif

  /// Fixed-point scale for the exact per-minute totals: one unit is
  /// 2^-kUnitShift MB. Every variant memory >= 2^-8 MB (and any dyadic
  /// below) is represented exactly; deployments outside that envelope fall
  /// back to the always-correct row scan (exact_ok_ == false).
  static constexpr int kUnitShift = 60;

  void check_function(trace::FunctionId f) const;
  double recompute(std::size_t ti) const;
  void build_variant_tables();

  /// The single mutation point: keeps count/exact aggregates and the dirty
  /// bit coherent with the grid.
  void write_slot(std::size_t f, std::size_t t, std::int16_t next) {
    std::int16_t& slot = grid_[t * functions_ + f];
    const std::int16_t prev = slot;
    if (prev == next) return;
    if (prev != kNoVariant) {
      --count_[t];
      exact_[t] -= var_units_[f * max_variants_ + static_cast<std::size_t>(prev)];
    }
    if (next != kNoVariant) {
      ++count_[t];
      exact_[t] += var_units_[f * max_variants_ + static_cast<std::size_t>(next)];
    }
    slot = next;
    dirty_[t] = 1;
  }

  const Deployment* deployment_ = nullptr;
  trace::Minute duration_ = 0;
  std::size_t functions_ = 0;
  std::size_t max_variants_ = 0;
  bool exact_ok_ = false;

  /// Minute-major slots: grid_[t * functions_ + f].
  std::vector<std::int16_t> grid_;

  /// Per-(function, variant) memory, flattened: the same doubles the
  /// deployment's families hold, cached for linear access.
  std::vector<double> var_mem_;
  std::vector<ExactUnits> var_units_;
  std::vector<std::uint32_t> variant_count_;

  /// Per-minute aggregates, updated by write_slot.
  std::vector<std::int32_t> count_;
  std::vector<ExactUnits> exact_;

  /// Per-function scheduling horizon (upper bound; see scheduled_end).
  std::vector<trace::Minute> horizon_;

  /// Legacy-order memoized sums (logical const: memory_at fills them).
  mutable std::vector<double> cache_;
  mutable std::vector<std::uint8_t> dirty_;
};

}  // namespace pulse::sim
