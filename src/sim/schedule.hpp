#pragma once
// The keep-alive schedule: for every function and minute, which model
// variant (if any) is kept alive. Policies write it; the engine reads it to
// resolve warm/cold starts and to account keep-alive memory and cost.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/deployment.hpp"
#include "trace/trace.hpp"

namespace pulse::sim {

/// Sentinel for "no container kept alive".
constexpr int kNoVariant = -1;

class KeepAliveSchedule {
 public:
  /// The deployment must outlive the schedule.
  KeepAliveSchedule(const Deployment& deployment, trace::Minute duration);

  [[nodiscard]] trace::Minute duration() const noexcept { return duration_; }
  [[nodiscard]] std::size_t function_count() const noexcept { return slots_.size(); }
  [[nodiscard]] const Deployment& deployment() const noexcept { return *deployment_; }

  /// Variant kept alive for f at minute t; kNoVariant when none (or t is
  /// outside the horizon).
  [[nodiscard]] int variant_at(trace::FunctionId f, trace::Minute t) const;

  /// true when any container of f is alive at t.
  [[nodiscard]] bool is_alive(trace::FunctionId f, trace::Minute t) const {
    return variant_at(f, t) != kNoVariant;
  }

  /// Sets the kept-alive variant for one minute. Out-of-horizon minutes are
  /// ignored (policies schedule t+1..t+10 near the trace end). Throws on a
  /// variant index outside the function's family.
  void set(trace::FunctionId f, trace::Minute t, int variant);

  void clear(trace::FunctionId f, trace::Minute t) { set(f, t, kNoVariant); }

  /// Fills [from, to) with `variant` (clipped to the horizon).
  void fill(trace::FunctionId f, trace::Minute from, trace::Minute to, int variant);

  /// Clears every scheduled minute of f at or after `from`.
  void clear_from(trace::FunctionId f, trace::Minute from);

  /// Downgrades f by one variant for the contiguous scheduled stretch
  /// starting at t (the function's current keep-alive window): variant v
  /// becomes v-1; the lowest variant becomes "not kept alive". Minutes after
  /// the first gap — i.e. keep-alive windows scheduled by later invocations —
  /// are untouched. Returns the variant index that was scheduled at minute t
  /// before downgrading, or nullopt (and does nothing) when nothing is
  /// scheduled at t.
  std::optional<int> downgrade_from(trace::FunctionId f, trace::Minute t);

  /// Evicts f's container entirely for the contiguous scheduled stretch
  /// starting at t (capacity-pressure eviction: the platform kills the
  /// container regardless of variant). No-op when nothing is scheduled at t.
  void evict_from(trace::FunctionId f, trace::Minute t);

  /// Total keep-alive memory (MB) across functions at minute t.
  [[nodiscard]] double memory_at(trace::Minute t) const;

  /// (function, variant) pairs kept alive at minute t.
  [[nodiscard]] std::vector<std::pair<trace::FunctionId, std::size_t>> kept_alive_at(
      trace::Minute t) const;

 private:
  const Deployment* deployment_ = nullptr;
  trace::Minute duration_ = 0;
  std::vector<std::vector<std::int16_t>> slots_;
};

}  // namespace pulse::sim
