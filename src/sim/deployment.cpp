#include "sim/deployment.hpp"

#include <stdexcept>

namespace pulse::sim {

Deployment::Deployment(std::vector<const models::ModelFamily*> families)
    : families_(std::move(families)) {
  for (const auto* f : families_) {
    if (f == nullptr) throw std::invalid_argument("Deployment: null family pointer");
  }
}

Deployment Deployment::random(const models::ModelZoo& zoo, std::size_t function_count,
                              util::Pcg32& rng) {
  if (zoo.family_count() == 0) throw std::invalid_argument("Deployment::random: empty zoo");
  std::vector<const models::ModelFamily*> families;
  families.reserve(function_count);
  for (std::size_t f = 0; f < function_count; ++f) {
    families.push_back(&zoo.family(rng.bounded(static_cast<std::uint32_t>(zoo.family_count()))));
  }
  return Deployment(std::move(families));
}

Deployment Deployment::round_robin(const models::ModelZoo& zoo, std::size_t function_count) {
  if (zoo.family_count() == 0) {
    throw std::invalid_argument("Deployment::round_robin: empty zoo");
  }
  std::vector<const models::ModelFamily*> families;
  families.reserve(function_count);
  for (std::size_t f = 0; f < function_count; ++f) {
    families.push_back(&zoo.family(f % zoo.family_count()));
  }
  return Deployment(std::move(families));
}

double Deployment::peak_highest_memory_mb() const noexcept {
  double total = 0.0;
  for (const auto* f : families_) total += f->highest().memory_mb;
  return total;
}

}  // namespace pulse::sim
