#pragma once
// Ensemble runner: the paper's "1000 simulation runs, each presenting a
// unique combination of model-to-function assignments". Runs are
// independent — each gets its own Deployment, engine, policy instance and
// RNG stream — so the thread pool parallelizes them without any shared
// mutable state, and results are bit-identical for any thread count.

#include <functional>
#include <vector>

#include "models/zoo.hpp"
#include "obs/collector.hpp"
#include "sim/engine.hpp"
#include "sim/policy.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace pulse::sim {

/// Creates a fresh policy instance for one run.
using PolicyFactory = std::function<std::unique_ptr<KeepAlivePolicy>()>;

struct EnsembleConfig {
  std::size_t runs = 1000;
  std::uint64_t seed = 7;
  EngineConfig engine{};
  std::size_t threads = 0;  // 0 -> hardware concurrency

  /// Route an attached TraceSink through an obs::EventCollector: each worker
  /// slot emits into its own lock-free SPSC lane (no sink mutex on the
  /// simulation threads) and every run starts a sampling stream keyed by its
  /// run index, so event totals, per-type counts and sampling decisions are
  /// identical for any thread count. Off = the historical direct-attach
  /// path (workers contend on the sink's internal lock).
  bool lock_free_sink = true;

  /// Transport sizing and the deterministic sampling knob for the collector
  /// (ignored unless a sink is attached and lock_free_sink is on).
  obs::ObsConfig obs{};
};

struct EnsembleResult {
  /// One entry per run, in run order.
  std::vector<RunResult> runs;

  /// Merged observability metrics over every run (empty unless
  /// EngineConfig::observer.metrics was attached). Counter and histogram
  /// totals are exact integer sums and therefore independent of the thread
  /// count; gauge sums are floating-point diagnostics.
  obs::MetricsSnapshot metrics;

  /// Aggregates over the runs (totals per run, then averaged — the paper's
  /// "averaging the values across all runs").
  [[nodiscard]] double mean_service_time_s() const;
  [[nodiscard]] double mean_keepalive_cost_usd() const;
  [[nodiscard]] double mean_accuracy_pct() const;
  [[nodiscard]] double mean_overhead_s() const;
  [[nodiscard]] double mean_warm_fraction() const;

  /// Aggregates `metric(run)` over every run. Templated on the callable so
  /// per-metric sweeps pay no std::function type-erasure dispatch.
  template <typename Metric>
  [[nodiscard]] util::RunningStats stats_of(Metric&& metric) const {
    util::RunningStats stats;
    for (const auto& r : runs) stats.add(metric(r));
    return stats;
  }
};

/// Runs `config.runs` simulations of `trace` with per-run random
/// model-to-function assignments from `zoo`, each under a fresh policy from
/// `factory`.
[[nodiscard]] EnsembleResult run_ensemble(const models::ModelZoo& zoo,
                                          const trace::Trace& trace,
                                          const PolicyFactory& factory,
                                          const EnsembleConfig& config);

}  // namespace pulse::sim
