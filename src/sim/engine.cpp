#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace pulse::sim {

namespace {

/// MemoryHistory backed by the engine's growing per-minute record.
class RecordedHistory final : public MemoryHistory {
 public:
  explicit RecordedHistory(const std::vector<double>& record) : record_(&record) {}

  [[nodiscard]] double memory_at(trace::Minute t) const override {
    if (t < 0 || static_cast<std::size_t>(t) >= record_->size()) return 0.0;
    return (*record_)[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] trace::Minute now() const override {
    return static_cast<trace::Minute>(record_->size());
  }

 private:
  const std::vector<double>* record_;
};

using Clock = std::chrono::steady_clock;

}  // namespace

SimulationEngine::SimulationEngine(const Deployment& deployment, const trace::Trace& trace,
                                   EngineConfig config)
    : deployment_(&deployment), trace_(&trace), config_(config) {
  if (deployment.function_count() != trace.function_count()) {
    throw std::invalid_argument(
        "SimulationEngine: deployment/trace function count mismatch");
  }
}

RunResult SimulationEngine::run(KeepAlivePolicy& policy) {
  const trace::Trace& tr = *trace_;
  const Deployment& dep = *deployment_;
  const trace::Minute duration = tr.duration();

  // Observability: all three handles are optional; `sink` is the only one
  // consulted on the per-minute hot path, as a single null-check branch.
  const obs::Observer& obs = config_.observer;
  obs::TraceSink* const sink = obs.sink;
  const obs::PhaseTimer run_timer(obs.profiler, obs::Phase::kSimulate);
  policy.attach_observer(obs.any() ? &config_.observer : nullptr);

  RunResult result;
  KeepAliveSchedule schedule(dep, duration);
  // Reused across minutes by the capacity-eviction loop (allocation-free
  // hot path; see below).
  std::vector<std::pair<trace::FunctionId, std::size_t>> kept_buffer;
  std::vector<double> memory_record;
  memory_record.reserve(static_cast<std::size_t>(duration));
  RecordedHistory history(memory_record);
  util::Pcg32 latency_rng(config_.seed, /*stream=*/0xc0ffee);
  util::Pcg32 accuracy_rng(config_.seed, /*stream=*/0xacc);

  if (config_.record_series) {
    result.keepalive_memory_mb.reserve(static_cast<std::size_t>(duration));
    result.keepalive_cost_usd.reserve(static_cast<std::size_t>(duration));
    result.ideal_cost_usd.reserve(static_cast<std::size_t>(duration));
  }

  util::Pcg32 eviction_rng(config_.seed, /*stream=*/0xeb1c7);
  if (config_.record_per_function) {
    result.per_function.assign(tr.function_count(), FunctionMetrics{});
  }

  const fault::FaultInjector injector(config_.faults);
  const bool faults_on = injector.config().enabled();

  // Looked up once; per-minute updates are then a pointer check away.
  util::IntHistogram* alive_hist =
      obs.metrics != nullptr ? &obs.metrics->histogram("engine.alive_containers", 512)
                             : nullptr;

  policy.initialize(dep, tr, schedule);

  for (trace::Minute t = 0; t < duration; ++t) {
    double ideal_cost_t = 0.0;
    bool minute_degraded = false;

    // Injected container crashes fire at the minute boundary: the crashed
    // container's remaining keep-alive stretch is evicted, so this minute's
    // invocations (if any) go cold.
    if (faults_on && injector.config().crash_rate > 0.0) {
      schedule.for_each_alive(t, [&](trace::FunctionId f, std::size_t variant) {
        if (injector.container_crashes(f, t)) {
          schedule.evict_from(f, t);
          ++result.crash_evictions;
          minute_degraded = true;
          if (sink != nullptr) {
            sink->record({obs::EventType::kCrashEviction, t, f,
                          static_cast<std::int32_t>(variant), 1.0, ""});
          }
        }
      });
    }

    for (trace::FunctionId f = 0; f < tr.function_count(); ++f) {
      const std::uint32_t count = tr.count(f, t);
      if (count == 0) continue;

      const models::ModelFamily& family = dep.family_of(f);
      const int alive = schedule.variant_at(f, t);
      std::size_t serving;
      bool first_is_cold;
      if (alive != kNoVariant) {
        serving = static_cast<std::size_t>(alive);
        first_is_cold = false;
      } else {
        serving = policy.cold_start_variant(f, t, dep);
        first_is_cold = true;
        // The cold-started container exists for the rest of this minute and
        // counts toward keep-alive memory at t.
        schedule.set(f, t, static_cast<int>(serving));
      }

      // Injected cold-start failures: bounded retry with exponential
      // backoff; exhausting every retry fails the whole minute's
      // invocations (no container exists to serve them).
      bool served = true;
      double cold_retry_penalty_s = 0.0;
      if (first_is_cold && faults_on) {
        const fault::ColdStartOutcome cs = injector.cold_start(f, t);
        result.retries += cs.retries;
        cold_retry_penalty_s = cs.retry_penalty_s;
        if (cs.retries > 0 || !cs.succeeded) minute_degraded = true;
        if (!cs.succeeded) {
          served = false;
          schedule.clear(f, t);  // the provisional container never started
          result.failed_invocations += count;
        }
        if (sink != nullptr && cs.retries > 0) {
          sink->record({obs::EventType::kFault, t, f, static_cast<std::int32_t>(serving),
                        static_cast<double>(cs.retries), "cold_start_retry"});
        }
      }

      if (sink != nullptr) {
        if (served) {
          sink->record({first_is_cold ? obs::EventType::kColdStart
                                      : obs::EventType::kWarmStart,
                        t, f, static_cast<std::int32_t>(serving),
                        static_cast<double>(count), ""});
        } else {
          sink->record({obs::EventType::kFault, t, f, static_cast<std::int32_t>(serving),
                        static_cast<double>(count), "cold_start_failure"});
        }
      }

      if (served) {
        const models::ModelVariant& variant = family.variant(serving);
        for (std::uint32_t i = 0; i < count; ++i) {
          const bool cold = first_is_cold && i == 0;
          double service_s =
              config_.deterministic_latency
                  ? models::LatencyModel::expected_service_time(variant, cold)
                  : config_.latency.sample_service_time(variant, cold, latency_rng);
          double accuracy_credit =
              config_.bernoulli_accuracy
                  ? (accuracy_rng.bernoulli(variant.accuracy_fraction()) ? 100.0 : 0.0)
                  : variant.accuracy_pct;
          if (cold) service_s += cold_retry_penalty_s;
          if (faults_on) {
            // Per-variant SLO: the client abandons at the deadline, so the
            // time is clipped there and no accuracy is delivered.
            const double slo = injector.timeout_slo_s(
                models::LatencyModel::expected_service_time(variant, cold));
            if (slo > 0.0 && service_s > slo) {
              service_s = slo;
              accuracy_credit = 0.0;
              ++result.timeouts;
              minute_degraded = true;
              if (sink != nullptr) {
                sink->record({obs::EventType::kFault, t, f,
                              static_cast<std::int32_t>(serving), slo, "slo_timeout"});
              }
            }
          }
          result.total_service_time_s += service_s;
          result.accuracy_pct_sum += accuracy_credit;
          ++result.invocations;
          if (cold) {
            ++result.cold_starts;
          } else {
            ++result.warm_starts;
          }
          if (config_.record_service_samples) {
            result.service_time_samples.push_back(service_s);
          }
          if (config_.record_per_function) {
            FunctionMetrics& fm = result.per_function[f];
            ++fm.invocations;
            cold ? ++fm.cold_starts : ++fm.warm_starts;
            fm.service_time_s += service_s;
            fm.accuracy_pct_sum += accuracy_credit;
          }
        }
      }

      // The ideal reference keeps the highest-quality model alive exactly
      // during invocation minutes (Figure 6b's ideal line). It is fault-free
      // by definition, so failed minutes still accrue it.
      ideal_cost_t += config_.cost_model.keepalive_cost_usd(family.highest().memory_mb, 1.0);

      // The policy observes the arrival even when the platform failed to
      // serve it — predictors track demand, not fulfillment.
      if (config_.measure_overhead) {
        const auto start = Clock::now();
        policy.on_invocation(f, t, schedule);
        result.policy_overhead_s +=
            std::chrono::duration<double>(Clock::now() - start).count();
      } else {
        policy.on_invocation(f, t, schedule);
      }
    }

    if (config_.measure_overhead) {
      const auto start = Clock::now();
      policy.end_of_minute(t, schedule, history);
      result.policy_overhead_s += std::chrono::duration<double>(Clock::now() - start).count();
    } else {
      policy.end_of_minute(t, schedule, history);
    }

    // Capacity pressure: the platform evicts random kept containers until
    // keep-alive memory fits (the provider baseline behaviour under memory
    // stress; PULSE-style policies flatten before this fires). Injected
    // memory-pressure spikes temporarily tighten the capacity.
    double capacity_mb = config_.memory_capacity_mb;
    if (faults_on) {
      capacity_mb = injector.effective_capacity_mb(capacity_mb, t);
      if (injector.under_memory_pressure(t)) minute_degraded = true;
    }
    // memory_exceeds decides `memory_at(t) > capacity_mb` from the exact
    // integer aggregate (no per-iteration O(F) rescan), and evicting a
    // victim only changes that victim's row, so the alive list is built
    // once and maintained by erasing the victim — bit-identical to
    // rebuilding it, at O(evictions) instead of O(F * evictions).
    if (capacity_mb > 0.0 && schedule.memory_exceeds(t, capacity_mb)) {
      if (sink != nullptr) {
        sink->record({obs::EventType::kCapacityPressure, t, obs::TraceEvent::kNoFunction,
                      -1, schedule.memory_at(t) - capacity_mb, ""});
      }
      schedule.kept_alive_at(t, kept_buffer);
      while (!kept_buffer.empty()) {
        const auto idx = eviction_rng.bounded(static_cast<std::uint32_t>(kept_buffer.size()));
        const auto victim = kept_buffer[static_cast<std::size_t>(idx)];
        schedule.evict_from(victim.first, t);
        kept_buffer.erase(kept_buffer.begin() + idx);
        ++result.capacity_evictions;
        if (sink != nullptr) {
          sink->record({obs::EventType::kEviction, t, victim.first,
                        static_cast<std::int32_t>(victim.second), 1.0, "capacity"});
        }
        if (!schedule.memory_exceeds(t, capacity_mb)) break;
      }
    }
    if (minute_degraded) ++result.degraded_minutes;

    const double memory_t = schedule.memory_at(t);
    const double cost_t = config_.cost_model.keepalive_cost_usd(memory_t, 1.0);
    result.total_keepalive_cost_usd += cost_t;
    memory_record.push_back(memory_t);
    if (alive_hist != nullptr) alive_hist->add(schedule.alive_count_at(t));

    if (config_.record_series) {
      result.keepalive_memory_mb.push_back(memory_t);
      result.keepalive_cost_usd.push_back(cost_t);
      result.ideal_cost_usd.push_back(ideal_cost_t);
    }
  }

  result.downgrades = policy.downgrade_count();
  result.guard_incidents = policy.incident_count();

  // Fold the run's aggregates into the registry (zero hot-path cost: one
  // batch of adds at the end) and snapshot it into the result.
  if (obs.metrics != nullptr) {
    obs::MetricsRegistry& m = *obs.metrics;
    m.counter("engine.runs").add(1);
    m.counter("engine.invocations").add(result.invocations);
    m.counter("engine.warm_starts").add(result.warm_starts);
    m.counter("engine.cold_starts").add(result.cold_starts);
    m.counter("engine.downgrades").add(result.downgrades);
    m.counter("engine.capacity_evictions").add(result.capacity_evictions);
    m.counter("engine.crash_evictions").add(result.crash_evictions);
    m.counter("engine.failed_invocations").add(result.failed_invocations);
    m.counter("engine.retries").add(result.retries);
    m.counter("engine.timeouts").add(result.timeouts);
    m.counter("engine.degraded_minutes").add(result.degraded_minutes);
    m.counter("engine.guard_incidents").add(result.guard_incidents);
    m.gauge("engine.service_time_s").add(result.total_service_time_s);
    m.gauge("engine.keepalive_cost_usd").add(result.total_keepalive_cost_usd);
    double peak = 0.0;
    for (const double v : memory_record) peak = std::max(peak, v);
    m.gauge("engine.peak_keepalive_memory_mb").max_with(peak);
    result.metrics = m.snapshot();
  }
  return result;
}

}  // namespace pulse::sim
