#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace pulse::sim {

namespace {

/// MemoryHistory backed by the engine's growing per-minute record.
class RecordedHistory final : public MemoryHistory {
 public:
  explicit RecordedHistory(const std::vector<double>& record) : record_(&record) {}

  [[nodiscard]] double memory_at(trace::Minute t) const override {
    if (t < 0 || static_cast<std::size_t>(t) >= record_->size()) return 0.0;
    return (*record_)[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] trace::Minute now() const override {
    return static_cast<trace::Minute>(record_->size());
  }

 private:
  const std::vector<double>* record_;
};

using Clock = std::chrono::steady_clock;

// Stream tags of the hashed (EngineConfig::hashed_rng) per-invocation
// draws. Disjoint from the FaultInjector's stream tags so fault decisions
// and sampling never correlate.
constexpr std::uint64_t kHashLatencyStream = 0x1a7e'2c91;
constexpr std::uint64_t kHashAccuracyStream = 0x0acc'0117;
constexpr std::uint64_t kHashEvictStream = 0xeb1c'7005;

/// One key per invocation: minute in the high bits, the minute's invocation
/// index in the low 32 (counts are std::uint32_t, so the packing is exact).
[[nodiscard]] constexpr std::uint64_t invocation_key(trace::Minute t,
                                                     std::uint32_t i) noexcept {
  return (static_cast<std::uint64_t>(t) << 32) | i;
}

}  // namespace

SimulationEngine::SimulationEngine(const Deployment& deployment, const trace::Trace& trace,
                                   EngineConfig config)
    : deployment_(&deployment), trace_(&trace), config_(config) {
  if (deployment.function_count() != trace.function_count()) {
    throw std::invalid_argument(
        "SimulationEngine: deployment/trace function count mismatch");
  }
}

RunResult SimulationEngine::run(KeepAlivePolicy& policy) {
  SteppedRun stepped(*deployment_, *trace_, config_, policy);
  return stepped.finish();
}

SteppedRun::SteppedRun(const Deployment& deployment, const trace::Trace& trace,
                       EngineConfig config, KeepAlivePolicy& policy)
    : deployment_(&deployment),
      trace_(&trace),
      config_(config),
      policy_(&policy),
      schedule_(deployment, trace.duration()),
      latency_rng_(config.seed, /*stream=*/0xc0ffee),
      accuracy_rng_(config.seed, /*stream=*/0xacc),
      eviction_rng_(config.seed, /*stream=*/0xeb1c7),
      injector_(config.faults) {
  if (deployment.function_count() != trace.function_count()) {
    throw std::invalid_argument("SteppedRun: deployment/trace function count mismatch");
  }
  if (config_.global_ids != nullptr &&
      config_.global_ids->size() != trace.function_count()) {
    throw std::invalid_argument("SteppedRun: global_ids/trace function count mismatch");
  }
  const trace::Minute duration = trace.duration();
  memory_record_.reserve(static_cast<std::size_t>(duration));
  // Capacity-pressured minutes fill this with every kept container; sizing
  // it up front keeps even a late first pressure event allocation-free
  // (the serve-mode hot-path discipline bench_serve_latency enforces).
  kept_buffer_.reserve(deployment.function_count());
  history_ = std::make_unique<RecordedHistory>(memory_record_);
  faults_on_ = injector_.config().enabled();

  const obs::Observer& obs = config_.observer;
  policy_->attach_observer(obs.any() ? &config_.observer : nullptr);

  if (config_.record_series) {
    result_.keepalive_memory_mb.reserve(static_cast<std::size_t>(duration));
    result_.keepalive_cost_usd.reserve(static_cast<std::size_t>(duration));
    result_.ideal_cost_usd.reserve(static_cast<std::size_t>(duration));
  }
  if (config_.record_per_function) {
    result_.per_function.assign(trace.function_count(), FunctionMetrics{});
  }

  // Looked up once; per-minute updates are then a pointer check away.
  alive_hist_ = obs.metrics != nullptr
                    ? &obs.metrics->histogram("engine.alive_containers", 512)
                    : nullptr;

  // Same discipline for the finish-time fold: every engine.* name resolves
  // here, exactly once, into the handle bundle.
  if (obs.metrics != nullptr) {
    obs::MetricsRegistry& m = *obs.metrics;
    metric_handles_.runs.bind(m, "engine.runs");
    metric_handles_.invocations.bind(m, "engine.invocations");
    metric_handles_.warm_starts.bind(m, "engine.warm_starts");
    metric_handles_.cold_starts.bind(m, "engine.cold_starts");
    metric_handles_.downgrades.bind(m, "engine.downgrades");
    metric_handles_.capacity_evictions.bind(m, "engine.capacity_evictions");
    metric_handles_.crash_evictions.bind(m, "engine.crash_evictions");
    metric_handles_.failed_invocations.bind(m, "engine.failed_invocations");
    metric_handles_.retries.bind(m, "engine.retries");
    metric_handles_.timeouts.bind(m, "engine.timeouts");
    metric_handles_.degraded_minutes.bind(m, "engine.degraded_minutes");
    metric_handles_.guard_incidents.bind(m, "engine.guard_incidents");
    metric_handles_.service_time_s.bind(m, "engine.service_time_s");
    metric_handles_.keepalive_cost_usd.bind(m, "engine.keepalive_cost_usd");
    metric_handles_.peak_keepalive_memory_mb.bind(m, "engine.peak_keepalive_memory_mb",
                                                  obs::GaugeMerge::kMax);
    if (config_.top_k_function_metrics > 0) {
      fn_cold_starts_.assign(trace.function_count(), 0);
      fn_evictions_.assign(trace.function_count(), 0);
    }
  }

  policy_->initialize(deployment, trace, schedule_);
}

SteppedRun::~SteppedRun() = default;

trace::Minute SteppedRun::duration() const noexcept { return trace_->duration(); }

double SteppedRun::keepalive_memory_mb(trace::Minute t) const noexcept {
  if (t < 0 || static_cast<std::size_t>(t) >= memory_record_.size()) return 0.0;
  return memory_record_[static_cast<std::size_t>(t)];
}

void SteppedRun::run_until(trace::Minute end) {
  const trace::Minute stop = std::min(end, trace_->duration());
  if (next_minute_ >= stop) return;
  // One kSimulate span per advancing slice: a run driven straight to the
  // end records exactly one call, like the historical monolithic run().
  const obs::PhaseTimer timer(config_.observer.profiler, obs::Phase::kSimulate);
  while (next_minute_ < stop) {
    step_minute();
    ++next_minute_;
  }
}

void SteppedRun::step_minute() {
  const trace::Trace& tr = *trace_;
  const Deployment& dep = *deployment_;
  KeepAlivePolicy& policy = *policy_;
  KeepAliveSchedule& schedule = schedule_;
  RunResult& result = result_;
  const fault::FaultInjector& injector = injector_;
  const bool faults_on = faults_on_;
  const bool hashed = config_.hashed_rng;
  const std::vector<trace::FunctionId>* const gids = config_.global_ids;

  const obs::Observer& obs = config_.observer;
  obs::TraceSink* const sink = obs.sink;

  const trace::Minute t = next_minute_;
  double ideal_cost_t = 0.0;
  bool minute_degraded = false;

  // Injected container crashes fire at the minute boundary: the crashed
  // container's remaining keep-alive stretch is evicted, so this minute's
  // invocations (if any) go cold.
  if (faults_on && injector.config().crash_rate > 0.0) {
    schedule.for_each_alive(t, [&](trace::FunctionId f, std::size_t variant) {
      const trace::FunctionId gf = gids != nullptr ? (*gids)[f] : f;
      if (injector.container_crashes(gf, t)) {
        schedule.evict_from(f, t);
        ++result.crash_evictions;
        if (!fn_evictions_.empty()) ++fn_evictions_[f];
        minute_degraded = true;
        if (sink != nullptr) {
          sink->record({obs::EventType::kCrashEviction, t, gf,
                        static_cast<std::int32_t>(variant), 1.0, ""});
        }
      }
    });
  }

  for (trace::FunctionId f = 0; f < tr.function_count(); ++f) {
    const std::uint32_t count = tr.count(f, t);
    if (count == 0) continue;
    const trace::FunctionId gf = gids != nullptr ? (*gids)[f] : f;

    const models::ModelFamily& family = dep.family_of(f);
    const int alive = schedule.variant_at(f, t);
    std::size_t serving;
    bool first_is_cold;
    if (alive != kNoVariant) {
      serving = static_cast<std::size_t>(alive);
      first_is_cold = false;
    } else {
      serving = policy.cold_start_variant(f, t, dep);
      first_is_cold = true;
      // The cold-started container exists for the rest of this minute and
      // counts toward keep-alive memory at t.
      schedule.set(f, t, static_cast<int>(serving));
    }

    // Injected cold-start failures: bounded retry with exponential
    // backoff; exhausting every retry fails the whole minute's
    // invocations (no container exists to serve them).
    bool served = true;
    double cold_retry_penalty_s = 0.0;
    if (first_is_cold && faults_on) {
      const fault::ColdStartOutcome cs = injector.cold_start(gf, t);
      result.retries += cs.retries;
      cold_retry_penalty_s = cs.retry_penalty_s;
      if (cs.retries > 0 || !cs.succeeded) minute_degraded = true;
      if (!cs.succeeded) {
        served = false;
        schedule.clear(f, t);  // the provisional container never started
        result.failed_invocations += count;
      }
      if (sink != nullptr && cs.retries > 0) {
        sink->record({obs::EventType::kFault, t, gf, static_cast<std::int32_t>(serving),
                      static_cast<double>(cs.retries), "cold_start_retry"});
      }
    }

    if (sink != nullptr) {
      if (served) {
        sink->record({first_is_cold ? obs::EventType::kColdStart
                                    : obs::EventType::kWarmStart,
                      t, gf, static_cast<std::int32_t>(serving),
                      static_cast<double>(count), ""});
      } else {
        sink->record({obs::EventType::kFault, t, gf, static_cast<std::int32_t>(serving),
                      static_cast<double>(count), "cold_start_failure"});
      }
    }

    if (served) {
      const models::ModelVariant& variant = family.variant(serving);
      for (std::uint32_t i = 0; i < count; ++i) {
        const bool cold = first_is_cold && i == 0;
        double service_s;
        if (config_.deterministic_latency) {
          service_s = models::LatencyModel::expected_service_time(variant, cold);
        } else if (hashed) {
          // A function's jitter depends only on its own coordinates: one
          // short-lived generator per invocation, keyed by the catalog-
          // global id. See EngineConfig::hashed_rng.
          util::Pcg32 draw(util::hash_u64(config_.seed, kHashLatencyStream,
                                          static_cast<std::uint64_t>(gf),
                                          invocation_key(t, i)),
                           kHashLatencyStream);
          service_s = config_.latency.sample_service_time(variant, cold, draw);
        } else {
          service_s = config_.latency.sample_service_time(variant, cold, latency_rng_);
        }
        double accuracy_credit;
        if (!config_.bernoulli_accuracy) {
          accuracy_credit = variant.accuracy_pct;
        } else if (hashed) {
          accuracy_credit =
              util::hash_uniform(config_.seed, kHashAccuracyStream,
                                 static_cast<std::uint64_t>(gf), invocation_key(t, i)) <
                      variant.accuracy_fraction()
                  ? 100.0
                  : 0.0;
        } else {
          accuracy_credit =
              accuracy_rng_.bernoulli(variant.accuracy_fraction()) ? 100.0 : 0.0;
        }
        if (cold) service_s += cold_retry_penalty_s;
        if (faults_on) {
          // Per-variant SLO: the client abandons at the deadline, so the
          // time is clipped there and no accuracy is delivered.
          const double slo = injector.timeout_slo_s(
              models::LatencyModel::expected_service_time(variant, cold));
          if (slo > 0.0 && service_s > slo) {
            service_s = slo;
            accuracy_credit = 0.0;
            ++result.timeouts;
            minute_degraded = true;
            if (sink != nullptr) {
              sink->record({obs::EventType::kFault, t, gf,
                            static_cast<std::int32_t>(serving), slo, "slo_timeout"});
            }
          }
        }
        result.total_service_time_s += service_s;
        result.accuracy_pct_sum += accuracy_credit;
        ++result.invocations;
        if (cold) {
          ++result.cold_starts;
          if (!fn_cold_starts_.empty()) ++fn_cold_starts_[f];
        } else {
          ++result.warm_starts;
        }
        if (config_.record_service_samples) {
          result.service_time_samples.push_back(service_s);
        }
        if (config_.record_per_function) {
          FunctionMetrics& fm = result.per_function[f];
          ++fm.invocations;
          cold ? ++fm.cold_starts : ++fm.warm_starts;
          fm.service_time_s += service_s;
          fm.accuracy_pct_sum += accuracy_credit;
        }
      }
    }

    // The ideal reference keeps the highest-quality model alive exactly
    // during invocation minutes (Figure 6b's ideal line). It is fault-free
    // by definition, so failed minutes still accrue it.
    ideal_cost_t += config_.cost_model.keepalive_cost_usd(family.highest().memory_mb, 1.0);

    // The policy observes the arrival even when the platform failed to
    // serve it — predictors track demand, not fulfillment.
    if (config_.measure_overhead) {
      const auto start = Clock::now();
      policy.on_invocation(f, t, schedule);
      result.policy_overhead_s +=
          std::chrono::duration<double>(Clock::now() - start).count();
    } else {
      policy.on_invocation(f, t, schedule);
    }
  }

  if (config_.measure_overhead) {
    const auto start = Clock::now();
    policy.end_of_minute(t, schedule, *history_);
    result.policy_overhead_s += std::chrono::duration<double>(Clock::now() - start).count();
  } else {
    policy.end_of_minute(t, schedule, *history_);
  }

  // Capacity pressure: the platform evicts random kept containers until
  // keep-alive memory fits (the provider baseline behaviour under memory
  // stress; PULSE-style policies flatten before this fires). Injected
  // memory-pressure spikes temporarily tighten the capacity.
  double capacity_mb = config_.memory_capacity_mb;
  if (faults_on) {
    capacity_mb = injector.effective_capacity_mb(capacity_mb, t);
    if (injector.under_memory_pressure(t)) minute_degraded = true;
  }
  // memory_exceeds decides `memory_at(t) > capacity_mb` from the exact
  // integer aggregate (no per-iteration O(F) rescan), and evicting a
  // victim only changes that victim's row, so the alive list is built
  // once and maintained by erasing the victim — bit-identical to
  // rebuilding it, at O(evictions) instead of O(F * evictions).
  if (capacity_mb > 0.0 && schedule.memory_exceeds(t, capacity_mb)) {
    if (sink != nullptr) {
      sink->record({obs::EventType::kCapacityPressure, t, obs::TraceEvent::kNoFunction,
                    -1, schedule.memory_at(t) - capacity_mb, ""});
    }
    schedule.kept_alive_at(t, kept_buffer_);
    std::uint32_t evict_ordinal = 0;
    while (!kept_buffer_.empty()) {
      std::uint32_t idx;
      if (hashed) {
        // Victim picks keyed by (minute, ordinal): independent of how many
        // evictions earlier minutes performed, hence reproducible whatever
        // quota trajectory the cluster market applied before this minute.
        util::Pcg32 draw(util::hash_u64(config_.seed, kHashEvictStream,
                                        static_cast<std::uint64_t>(t), evict_ordinal),
                         kHashEvictStream);
        idx = draw.bounded(static_cast<std::uint32_t>(kept_buffer_.size()));
        ++evict_ordinal;
      } else {
        idx = eviction_rng_.bounded(static_cast<std::uint32_t>(kept_buffer_.size()));
      }
      const auto victim = kept_buffer_[static_cast<std::size_t>(idx)];
      schedule.evict_from(victim.first, t);
      kept_buffer_.erase(kept_buffer_.begin() + idx);
      ++result.capacity_evictions;
      if (!fn_evictions_.empty()) ++fn_evictions_[victim.first];
      if (sink != nullptr) {
        sink->record({obs::EventType::kEviction, t,
                      gids != nullptr ? (*gids)[victim.first] : victim.first,
                      static_cast<std::int32_t>(victim.second), 1.0, "capacity"});
      }
      if (!schedule.memory_exceeds(t, capacity_mb)) break;
    }
  }
  if (minute_degraded) ++result.degraded_minutes;

  const double memory_t = schedule.memory_at(t);
  const double cost_t = config_.cost_model.keepalive_cost_usd(memory_t, 1.0);
  result.total_keepalive_cost_usd += cost_t;
  memory_record_.push_back(memory_t);
  const bool sample_minute = sink != nullptr && config_.emit_minute_samples;
  if (alive_hist_ != nullptr || sample_minute) {
    const std::size_t alive_n = schedule.alive_count_at(t);
    if (alive_hist_ != nullptr) alive_hist_->add(alive_n);
    if (sample_minute) {
      // End-of-minute aggregate: the replayer's cost-curve anchor. value
      // carries the exact memory double (%.17g survives the JSONL round
      // trip), variant the alive container count.
      sink->record({obs::EventType::kMinuteSample, t, obs::TraceEvent::kNoFunction,
                    static_cast<std::int32_t>(alive_n), memory_t, ""});
    }
  }

  if (config_.record_series) {
    result.keepalive_memory_mb.push_back(memory_t);
    result.keepalive_cost_usd.push_back(cost_t);
    result.ideal_cost_usd.push_back(ideal_cost_t);
  }
}

RunCheckpoint SteppedRun::checkpoint() const {
  return RunCheckpoint{next_minute_,  config_.memory_capacity_mb,
                       result_,       schedule_,
                       memory_record_, latency_rng_,
                       accuracy_rng_, eviction_rng_,
                       policy_->checkpoint()};
}

void SteppedRun::restore(const RunCheckpoint& snapshot) {
  if (finished_) {
    throw std::logic_error("SteppedRun::restore: run already finished");
  }
  next_minute_ = snapshot.minute;
  config_.memory_capacity_mb = snapshot.memory_capacity_mb;
  result_ = snapshot.result;
  schedule_ = snapshot.schedule;
  memory_record_ = snapshot.memory_record;
  latency_rng_ = snapshot.latency_rng;
  accuracy_rng_ = snapshot.accuracy_rng;
  eviction_rng_ = snapshot.eviction_rng;
  policy_->restore(snapshot.policy.get());
}

void SteppedRun::replay_until(trace::Minute end) {
  // Muting config_.observer in place silences the engine's own emission,
  // but policies (and helpers like the PULSE optimizer) bind metric-handle
  // bundles at attach time — their resolved registry pointers outlive any
  // in-place mute. Detach for the replayed span and re-attach after, so
  // the handles unbind and the replay double-counts nothing.
  const obs::Observer saved_observer = config_.observer;
  util::IntHistogram* const saved_hist = alive_hist_;
  // The top-K tallies counted the rolled-back span in the original pass,
  // so they go quiet with the rest of the emission during replay.
  std::vector<std::uint64_t> saved_cold = std::move(fn_cold_starts_);
  std::vector<std::uint64_t> saved_evict = std::move(fn_evictions_);
  config_.observer = obs::Observer{};
  alive_hist_ = nullptr;
  fn_cold_starts_.clear();
  fn_evictions_.clear();
  policy_->attach_observer(nullptr);
  const auto reattach = [&] {
    config_.observer = saved_observer;
    alive_hist_ = saved_hist;
    fn_cold_starts_ = std::move(saved_cold);
    fn_evictions_ = std::move(saved_evict);
    policy_->attach_observer(config_.observer.any() ? &config_.observer : nullptr);
  };
  try {
    run_until(end);
  } catch (...) {
    reattach();
    throw;
  }
  reattach();
}

std::uint64_t SteppedRun::lose_warm_pool(trace::Minute t) {
  std::uint64_t lost = 0;
  schedule_.for_each_alive(t, [&](trace::FunctionId, std::size_t) { ++lost; });
  // Everything scheduled from t onward dies with the shard: the alive
  // containers (charged as crash evictions) and any planned keep-alive.
  for (trace::FunctionId f = 0; f < trace_->function_count(); ++f) {
    schedule_.clear_from(f, t);
  }
  result_.crash_evictions += lost;
  return lost;
}

std::uint64_t SteppedRun::run_outage(trace::Minute end) {
  const trace::Trace& tr = *trace_;
  const trace::Minute stop = std::min(end, tr.duration());
  const std::vector<trace::FunctionId>* const gids = config_.global_ids;
  obs::TraceSink* const sink = config_.observer.sink;
  std::uint64_t failed = 0;

  while (next_minute_ < stop) {
    const trace::Minute t = next_minute_;
    double ideal_cost_t = 0.0;
    for (trace::FunctionId f = 0; f < tr.function_count(); ++f) {
      const std::uint32_t count = tr.count(f, t);
      if (count == 0) continue;
      // The ideal reference is fault-free by definition, so outage minutes
      // still accrue it — exactly like failed minutes in step_minute().
      ideal_cost_t += config_.cost_model.keepalive_cost_usd(
          deployment_->family_of(f).highest().memory_mb, 1.0);
      result_.failed_invocations += count;
      failed += count;
      if (sink != nullptr) {
        sink->record({obs::EventType::kFault, t, gids != nullptr ? (*gids)[f] : f, -1,
                      static_cast<double>(count), "shard_outage"});
      }
    }
    ++result_.degraded_minutes;

    // The control plane outlives the worker: minute-indexed policy state
    // (demand histories, forecast periods) stays aligned with the clock,
    // and windows it schedules past the outage become recovery pre-warms.
    // Arrivals were lost, so on_invocation is never called.
    policy_->end_of_minute(t, schedule_, *history_);

    // A dead shard holds nothing warm: zero memory, zero keep-alive cost.
    memory_record_.push_back(0.0);
    if (alive_hist_ != nullptr) alive_hist_->add(0);
    if (sink != nullptr && config_.emit_minute_samples) {
      sink->record({obs::EventType::kMinuteSample, t, obs::TraceEvent::kNoFunction, 0, 0.0,
                    ""});
    }
    if (config_.record_series) {
      result_.keepalive_memory_mb.push_back(0.0);
      result_.keepalive_cost_usd.push_back(0.0);
      result_.ideal_cost_usd.push_back(ideal_cost_t);
    }
    ++next_minute_;
  }
  return failed;
}

RunResult SteppedRun::finish() { return finish_at(trace_->duration()); }

RunResult SteppedRun::finish_at(trace::Minute end) {
  if (finished_) {
    throw std::logic_error("SteppedRun::finish: already finished");
  }
  run_until(end);
  finished_ = true;

  RunResult& result = result_;
  result.downgrades = policy_->downgrade_count();
  result.guard_incidents = policy_->incident_count();

  // Fold the run's aggregates into the registry (zero hot-path cost: one
  // batch of pointer adds through the pre-resolved handle bundle) and
  // snapshot it into the result.
  const obs::Observer& obs = config_.observer;
  if (obs.metrics != nullptr) {
    MetricsHandles& h = metric_handles_;
    h.runs.bump();
    h.invocations.bump(result.invocations);
    h.warm_starts.bump(result.warm_starts);
    h.cold_starts.bump(result.cold_starts);
    h.downgrades.bump(result.downgrades);
    h.capacity_evictions.bump(result.capacity_evictions);
    h.crash_evictions.bump(result.crash_evictions);
    h.failed_invocations.bump(result.failed_invocations);
    h.retries.bump(result.retries);
    h.timeouts.bump(result.timeouts);
    h.degraded_minutes.bump(result.degraded_minutes);
    h.guard_incidents.bump(result.guard_incidents);
    h.service_time_s.bump(result.total_service_time_s);
    h.keepalive_cost_usd.bump(result.total_keepalive_cost_usd);
    double peak = 0.0;
    for (const double v : memory_record_) peak = std::max(peak, v);
    h.peak_keepalive_memory_mb.bump(peak);
    h.runs.flush();
    h.invocations.flush();
    h.warm_starts.flush();
    h.cold_starts.flush();
    h.downgrades.flush();
    h.capacity_evictions.flush();
    h.crash_evictions.flush();
    h.failed_invocations.flush();
    h.retries.flush();
    h.timeouts.flush();
    h.degraded_minutes.flush();
    h.guard_incidents.flush();
    h.service_time_s.flush();
    h.keepalive_cost_usd.flush();
    h.peak_keepalive_memory_mb.flush();
    fold_top_k(*obs.metrics);
    result.metrics = obs.metrics->snapshot();
  }
  return std::move(result_);
}

void SteppedRun::fold_top_k(obs::MetricsRegistry& m) const {
  if (fn_cold_starts_.empty()) return;
  const std::vector<trace::FunctionId>* const gids = config_.global_ids;
  const auto fold = [&](const char* prefix, const std::vector<std::uint64_t>& tallies) {
    // Rank by count descending, ties by ascending catalog-global id — a
    // total order, so the reported set is deterministic.
    std::vector<std::pair<std::uint64_t, trace::FunctionId>> ranked;
    for (trace::FunctionId f = 0; f < tallies.size(); ++f) {
      if (tallies[f] == 0) continue;
      ranked.emplace_back(tallies[f], gids != nullptr ? (*gids)[f] : f);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    if (ranked.size() > config_.top_k_function_metrics) {
      ranked.resize(config_.top_k_function_metrics);
    }
    for (const auto& [count, gid] : ranked) {
      m.counter(std::string(prefix) + std::to_string(gid)).add(count);
    }
  };
  fold("engine.topk.cold_starts.", fn_cold_starts_);
  fold("engine.topk.evictions.", fn_evictions_);
}

}  // namespace pulse::sim
