#pragma once
// Per-run simulation results: the three metrics the paper evaluates
// (service time, keep-alive cost, accuracy) plus the per-minute series
// behind Figures 4, 6(b) and 7.

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "trace/trace.hpp"

namespace pulse::sim {

/// Per-function breakdown of a run (EngineConfig::record_per_function).
struct FunctionMetrics {
  std::uint64_t invocations = 0;
  std::uint64_t warm_starts = 0;
  std::uint64_t cold_starts = 0;
  double service_time_s = 0.0;
  double accuracy_pct_sum = 0.0;

  [[nodiscard]] double average_accuracy_pct() const noexcept {
    return invocations ? accuracy_pct_sum / static_cast<double>(invocations) : 0.0;
  }
  [[nodiscard]] double mean_service_time_s() const noexcept {
    return invocations ? service_time_s / static_cast<double>(invocations) : 0.0;
  }
};

/// The fault/robustness tallies shared by the minute engine's RunResult and
/// the platform simulator's PlatformResult. Both layers derive every fault
/// decision from the same hash-seeded fault::FaultInjector, so on
/// low-concurrency traces the two engines must produce *identical* counter
/// sets — tests/platform/platform_fault_test.cpp compares these structs
/// directly.
struct FaultCounters {
  /// Invocations that could not be served: their cold start exhausted every
  /// retry. They contribute no service time or accuracy credit.
  std::uint64_t failed_invocations = 0;

  /// Cold-start retry attempts performed (each pays exponential backoff).
  std::uint64_t retries = 0;

  /// Invocations abandoned at their per-variant SLO deadline.
  std::uint64_t timeouts = 0;

  /// Kept-alive containers evicted by injected crashes.
  std::uint64_t crash_evictions = 0;

  /// Containers forcibly evicted because keep-alive memory exceeded the
  /// configured (or pressure-tightened) capacity.
  std::uint64_t capacity_evictions = 0;

  /// Minutes in which at least one fault event fired.
  std::uint64_t degraded_minutes = 0;

  /// Incidents absorbed by a fault::GuardedPolicy wrapper.
  std::uint64_t guard_incidents = 0;

  [[nodiscard]] bool operator==(const FaultCounters&) const noexcept = default;
};

struct RunResult {
  /// Cumulative service time over every invocation (cold start + execution),
  /// seconds. The paper's "Service Time" metric.
  double total_service_time_s = 0.0;

  /// Total provider keep-alive spend, USD.
  double total_keepalive_cost_usd = 0.0;

  /// Sum over invocations of the serving variant's accuracy (percent);
  /// divide by `invocations` for the paper's accuracy metric.
  double accuracy_pct_sum = 0.0;

  std::uint64_t invocations = 0;
  std::uint64_t warm_starts = 0;
  std::uint64_t cold_starts = 0;

  /// Downgrades performed by the policy's cross-function optimizer.
  std::uint64_t downgrades = 0;

  /// Wall-clock time spent inside policy decision calls, seconds — the
  /// overhead metric of Figure 9.
  double policy_overhead_s = 0.0;

  /// Containers forcibly evicted because total keep-alive memory exceeded
  /// EngineConfig::memory_capacity_mb (0 when no capacity is set).
  std::uint64_t capacity_evictions = 0;

  // --- Fault metrics (all zero unless EngineConfig::faults has nonzero
  // --- rates; see fault/injector.hpp for the fault model).

  /// Invocations that could not be served: their cold start exhausted every
  /// retry. They contribute no service time or accuracy credit and are not
  /// part of `invocations`.
  std::uint64_t failed_invocations = 0;

  /// Cold-start retry attempts performed (each pays exponential backoff).
  std::uint64_t retries = 0;

  /// Invocations whose service time exceeded the per-variant SLO; they are
  /// abandoned at the deadline (service time clipped, zero accuracy credit)
  /// but still counted in `invocations`.
  std::uint64_t timeouts = 0;

  /// Kept-alive containers evicted by injected crashes.
  std::uint64_t crash_evictions = 0;

  /// Minutes in which at least one fault event fired (crash, cold-start
  /// failure/retry, timeout, or a memory-pressure spike).
  std::uint64_t degraded_minutes = 0;

  /// Incidents absorbed by a fault::GuardedPolicy wrapper (exceptions or
  /// predictor divergence); 0 for unguarded policies.
  std::uint64_t guard_incidents = 0;

  [[nodiscard]] double failed_fraction() const noexcept {
    const std::uint64_t attempted = invocations + failed_invocations;
    return attempted ? static_cast<double>(failed_invocations) / static_cast<double>(attempted)
                     : 0.0;
  }

  /// The fault tallies gathered into the shared cross-engine struct (the
  /// platform parity tests compare this against PlatformResult's).
  [[nodiscard]] FaultCounters fault_counters() const noexcept {
    return FaultCounters{failed_invocations, retries,           timeouts,
                         crash_evictions,    capacity_evictions, degraded_minutes,
                         guard_incidents};
  }

  /// Per-minute series (empty unless EngineConfig::record_series).
  std::vector<double> keepalive_memory_mb;
  std::vector<double> keepalive_cost_usd;
  std::vector<double> ideal_cost_usd;

  /// Per-function breakdown (empty unless EngineConfig::record_per_function).
  std::vector<FunctionMetrics> per_function;

  /// Individual invocation service times in trace order (empty unless
  /// EngineConfig::record_service_samples). Enables tail-latency analysis.
  std::vector<double> service_time_samples;

  /// Snapshot of the attached obs::MetricsRegistry taken at the end of the
  /// run; empty when no registry was attached. Not part of the determinism
  /// fingerprint — it is diagnostics, not a paper metric. When one registry
  /// serves several runs (ensemble slots) the snapshot is cumulative up to
  /// this run's completion.
  obs::MetricsSnapshot metrics;

  /// Linear-interpolated percentile of the recorded service-time samples
  /// (p in [0, 100]); 0 when sampling was off.
  [[nodiscard]] double service_time_percentile(double p) const;

  /// Several percentiles of the service-time samples with a single sort
  /// (out[i] corresponds to ps[i]; bit-identical to per-p calls). Prefer
  /// this when reporting p50/p95/p99 together — service_time_percentile
  /// re-sorts the whole sample set on every call.
  [[nodiscard]] std::vector<double> service_time_percentiles(
      std::span<const double> ps) const;

  [[nodiscard]] double average_accuracy_pct() const noexcept {
    return invocations ? accuracy_pct_sum / static_cast<double>(invocations) : 0.0;
  }

  [[nodiscard]] double warm_start_fraction() const noexcept {
    return invocations ? static_cast<double>(warm_starts) / static_cast<double>(invocations)
                       : 0.0;
  }

  /// Overhead relative to delivered service time (Figure 9's x-axis).
  [[nodiscard]] double overhead_over_service_time() const noexcept {
    return total_service_time_s > 0.0 ? policy_overhead_s / total_service_time_s : 0.0;
  }
};

/// Percentage improvement of `ours` over `baseline` where *smaller is
/// better* (service time, cost): positive means `ours` is better.
[[nodiscard]] inline double improvement_pct(double baseline, double ours) noexcept {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - ours) / baseline;
}

/// Percentage change of `ours` relative to `baseline` where *larger is
/// better* (accuracy): positive means `ours` is better.
[[nodiscard]] inline double change_pct(double baseline, double ours) noexcept {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (ours - baseline) / baseline;
}

}  // namespace pulse::sim
