#pragma once
// A Deployment binds every trace function to an ML model family for one
// simulation run. The paper's ensemble varies exactly this binding across
// its 1000 runs ("each run with different model-to-function assignments").

#include <cstddef>
#include <vector>

#include "models/zoo.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace pulse::sim {

class Deployment {
 public:
  Deployment() = default;

  /// `families` must be non-null pointers into a ModelZoo that outlives the
  /// deployment (the zoo is immutable for the whole experiment).
  explicit Deployment(std::vector<const models::ModelFamily*> families);

  [[nodiscard]] std::size_t function_count() const noexcept { return families_.size(); }

  [[nodiscard]] const models::ModelFamily& family_of(trace::FunctionId f) const {
    return *families_.at(f);
  }

  /// Uniform random family per function (the ensemble's per-run assignment).
  [[nodiscard]] static Deployment random(const models::ModelZoo& zoo,
                                         std::size_t function_count, util::Pcg32& rng);

  /// Deterministic family assignment (function i -> family i mod |zoo|);
  /// used by tests and single-run figures that need reproducibility without
  /// an ensemble.
  [[nodiscard]] static Deployment round_robin(const models::ModelZoo& zoo,
                                              std::size_t function_count);

  /// Total keep-alive memory if every function kept its highest-quality
  /// variant alive simultaneously — a natural memory-budget reference.
  [[nodiscard]] double peak_highest_memory_mb() const noexcept;

 private:
  std::vector<const models::ModelFamily*> families_;
};

}  // namespace pulse::sim
