#pragma once
// Keep-alive cost accounting.
//
// The paper prices keep-alive by memory-time using AWS-style pricing (its
// "$16.67 per KB-second" figure is garbled; the Table I cents/hour column
// implies ~0.0119 cents per MB-hour, which we adopt as the default rate —
// see DESIGN.md). Only relative costs matter for every reported result.

#include "models/model.hpp"

namespace pulse::sim {

class CostModel {
 public:
  /// Default rate reproduces Table I's keep-alive cost column from the
  /// variant memory footprints.
  static constexpr double kDefaultCentsPerMbHour = 0.0119;

  explicit constexpr CostModel(double cents_per_mb_hour = kDefaultCentsPerMbHour) noexcept
      : cents_per_mb_hour_(cents_per_mb_hour) {}

  [[nodiscard]] constexpr double cents_per_mb_hour() const noexcept {
    return cents_per_mb_hour_;
  }

  /// USD charged for keeping `memory_mb` resident for `minutes`.
  [[nodiscard]] constexpr double keepalive_cost_usd(double memory_mb,
                                                    double minutes) const noexcept {
    return memory_mb * minutes * cents_per_mb_hour_ / 60.0 / 100.0;
  }

  /// Table I's "Keep Alive Cost (cents/hour)" column for one variant.
  [[nodiscard]] constexpr double cents_per_hour(const models::ModelVariant& v) const noexcept {
    return v.memory_mb * cents_per_mb_hour_;
  }

 private:
  double cents_per_mb_hour_;
};

}  // namespace pulse::sim
