#pragma once
// Exact solver for the MILP formulation the paper compares against (§V,
// Figure 9): "maximize overall utility value subject to a strict memory
// budget constraint", evaluating all selected models and their variants
// simultaneously.
//
// The integer program is a multiple-choice knapsack: for every model, pick
// at most one variant (or none); maximize the summed utility of the picks
// subject to the summed memory staying within budget. Solved exactly by
// depth-first branch-and-bound with an optimistic remaining-utility bound —
// for the paper's instance sizes (12 functions x <= 3 variants) this always
// reaches the true optimum.

#include <cstddef>
#include <vector>

namespace pulse::policies {

struct MilpOption {
  double utility = 0.0;
  double memory_mb = 0.0;
};

struct MilpProblem {
  /// items[i] holds the selectable options of model i; "select none"
  /// (utility 0, memory 0) is always implicitly available.
  std::vector<std::vector<MilpOption>> items;
  double memory_budget_mb = 0.0;

  /// Search-node budget (0 = unlimited). Instances at the paper's scale
  /// (~12 models) always solve exactly within a few thousand nodes; the
  /// budget exists so very large instances degrade to the best incumbent
  /// found instead of exploding (see MilpSolution::optimal).
  std::size_t node_limit = 0;
};

struct MilpSolution {
  /// choice[i]: selected option index of item i, or -1 for "none".
  std::vector<int> choice;
  double utility = 0.0;
  double memory_mb = 0.0;
  /// Search-tree nodes explored (overhead diagnostics for Figure 9).
  std::size_t nodes_explored = 0;

  /// false when the node budget was exhausted before the search completed
  /// (the solution is then the best feasible incumbent, not a proven
  /// optimum).
  bool optimal = true;
};

/// Exact optimum of `problem`. Options with memory above the remaining
/// budget are skipped during search; the returned solution is always
/// feasible (possibly all "none").
[[nodiscard]] MilpSolution solve_milp(const MilpProblem& problem);

}  // namespace pulse::policies
