#include "policies/milp_policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/utility.hpp"

namespace pulse::policies {

namespace {

/// MILP's post-initialize state. The peak detector is config-only and the
/// scratch buffers are rebuilt every peak, so neither needs a snapshot.
struct MilpCheckpoint final : sim::PolicyCheckpoint {
  std::vector<core::InterArrivalTracker> trackers;
  std::unique_ptr<core::PriorityStructure> priority;  // null before initialize()
  core::DemandHistory demand;
  std::uint64_t downgrades = 0;
  std::uint64_t solver_nodes = 0;
};

}  // namespace

void MilpPolicy::initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                            sim::KeepAliveSchedule& schedule) {
  (void)trace;
  (void)schedule;
  core::InterArrivalTracker::Config tracker_config;
  tracker_config.local_window = config_.local_window;
  trackers_.assign(deployment.function_count(), core::InterArrivalTracker(tracker_config));

  core::PeakDetector::Config peak_config;
  peak_config.memory_threshold = config_.memory_threshold;
  peak_config.local_window = config_.local_window;
  detector_ = std::make_unique<core::PeakDetector>(peak_config);
  priority_ = std::make_unique<core::PriorityStructure>(deployment.function_count());
}

void MilpPolicy::attach_observer(const obs::Observer* observer) {
  sim::KeepAlivePolicy::attach_observer(observer);
  metrics_handles_ = {};
  if (obs::MetricsRegistry* const m = metrics()) {
    metrics_handles_.solves.bind(*m, "milp.solves");
    metrics_handles_.solver_nodes.bind(*m, "milp.solver_nodes");
    metrics_handles_.downgrades.bind(*m, "milp.downgrades");
  }
}

void MilpPolicy::on_invocation(trace::FunctionId f, trace::Minute t,
                               sim::KeepAliveSchedule& schedule) {
  // Same function-centric optimization as PULSE: the comparison isolates
  // the cross-function step.
  const obs::PhaseTimer timer(profiler(), obs::Phase::kSchedule);
  core::InterArrivalTracker& tracker = trackers_.at(f);
  tracker.record(t);
  const std::size_t variants = schedule.variant_count_of(f);
  for (trace::Minute d = 1; d <= config_.keepalive_window; ++d) {
    const double p = tracker.probability(static_cast<std::size_t>(d), t);
    const std::size_t v = core::select_variant(p, variants, config_.technique);
    schedule.set(f, t + d, static_cast<int>(v));
  }
}

std::size_t MilpPolicy::cold_start_variant(trace::FunctionId f, trace::Minute t,
                                           const sim::Deployment& deployment) const {
  if (f < trackers_.size()) {
    if (const auto last = trackers_[f].last_invocation()) {
      if (t - *last <= config_.keepalive_window) return 0;
    }
  }
  return deployment.family_of(f).highest_index();
}

void MilpPolicy::end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                               const sim::MemoryHistory& history) {
  (void)history;  // like PULSE, peaks are detected against demand memory
  const obs::PhaseTimer timer(profiler(), obs::Phase::kOptimize);
  while (demand_.now() < t) demand_.push(0.0);
  const double prior = detector_->prior_memory(demand_, t);
  demand_.push(schedule.memory_at(t));
  if (!detector_->is_peak(schedule.memory_at(t), prior)) return;

  schedule.kept_alive_at(t, kept_buffer_);
  const auto& kept = kept_buffer_;
  if (kept.empty()) return;

  // Memory budget: the highest keep-alive memory that is not a peak.
  const double budget = prior + detector_->config().memory_threshold * prior;

  // Build the multiple-choice knapsack: for every kept model, the options
  // are its current variant or any lower one (an upgrade would raise
  // memory, never flatten a peak).
  priority_->normalized_into(priority_buffer_);
  const std::vector<double>& pr = priority_buffer_;
  MilpProblem problem;
  problem.memory_budget_mb = budget;
  // Paper-scale instances (~12 models) solve exactly well inside this
  // budget; it bounds worst-case latency for very large deployments.
  problem.node_limit = 5'000'000;
  problem.items.reserve(kept.size());
  for (const auto& [f, current] : kept) {
    const auto& family = schedule.deployment().family_of(f);
    std::vector<MilpOption> options;
    options.reserve(current + 1);
    for (std::size_t v = 0; v <= current; ++v) {
      core::UtilityComponents u;
      u.accuracy_improvement = family.accuracy_improvement(v);
      u.priority = pr.at(f);
      if (const auto last = trackers_.at(f).last_invocation()) {
        const trace::Minute offset = t - *last;
        if (offset < config_.keepalive_window) {
          u.invocation_probability = trackers_.at(f).probability_within(
              static_cast<std::size_t>(offset + 1),
              static_cast<std::size_t>(config_.keepalive_window), t);
        }
      }
      options.push_back(MilpOption{u.value(), family.variant(v).memory_mb});
    }
    problem.items.push_back(std::move(options));
  }

  const MilpSolution solution = solve_milp(problem);
  solver_nodes_ += solution.nodes_explored;
  if (obs::TraceSink* const s = sink()) {
    s->record({obs::EventType::kPolicyDecision, t, obs::TraceEvent::kNoFunction, -1,
               static_cast<double>(solution.nodes_explored), "milp_solve"});
  }

  // Apply: drop or lower every model whose optimal choice is below its
  // current variant, from minute t onward.
  std::uint64_t applied = 0;
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const auto [f, current] = kept[i];
    const int chosen = solution.choice[i];
    if (chosen == static_cast<int>(current)) continue;
    const int delta = static_cast<int>(current) - std::max(chosen, -1);
    // Lower (or clear) all scheduled minutes >= t by the same amount.
    // scheduled_end(f) bounds the walk: every later slot is kNoVariant.
    const trace::Minute end = std::min(schedule.duration(), schedule.scheduled_end(f));
    for (trace::Minute m = t; m < end; ++m) {
      const int v = schedule.variant_at(f, m);
      if (v == sim::kNoVariant) continue;
      const int lowered = v - delta;
      schedule.set(f, m, lowered >= 0 ? lowered : sim::kNoVariant);
    }
    priority_->record_downgrade(f);
    ++downgrades_;
    ++applied;
    if (obs::TraceSink* const s = sink()) {
      s->record({obs::EventType::kDowngrade, t, f, static_cast<std::int32_t>(current),
                 static_cast<double>(chosen), "milp"});
    }
  }
  // Solve boundary == minute boundary: fold the pending deltas through the
  // pre-resolved handles (no-ops when observability is disabled).
  metrics_handles_.solves.bump();
  metrics_handles_.solver_nodes.bump(solution.nodes_explored);
  if (applied > 0) metrics_handles_.downgrades.bump(applied);
  metrics_handles_.solves.flush();
  metrics_handles_.solver_nodes.flush();
  metrics_handles_.downgrades.flush();
}

std::unique_ptr<sim::PolicyCheckpoint> MilpPolicy::checkpoint() const {
  auto snap = std::make_unique<MilpCheckpoint>();
  snap->trackers = trackers_;
  if (priority_) snap->priority = std::make_unique<core::PriorityStructure>(*priority_);
  snap->demand = demand_;
  snap->downgrades = downgrades_;
  snap->solver_nodes = solver_nodes_;
  return snap;
}

void MilpPolicy::restore(const sim::PolicyCheckpoint* snapshot) {
  const auto* snap = dynamic_cast<const MilpCheckpoint*>(snapshot);
  if (snap == nullptr) {
    throw std::invalid_argument("MilpPolicy::restore: wrong snapshot type");
  }
  trackers_ = snap->trackers;
  priority_ =
      snap->priority ? std::make_unique<core::PriorityStructure>(*snap->priority) : nullptr;
  demand_ = snap->demand;
  downgrades_ = snap->downgrades;
  solver_nodes_ = snap->solver_nodes;
}

}  // namespace pulse::policies
