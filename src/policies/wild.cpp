#include "policies/wild.hpp"

#include <algorithm>
#include <stdexcept>

namespace pulse::policies {

namespace {

/// Wild's only post-initialize state: the per-function hybrid histograms.
struct WildCheckpoint : sim::PolicyCheckpoint {
  std::vector<predict::HybridHistogramPredictor> predictors;
};

/// Wild+PULSE adds the inter-arrival trackers and the global optimizer.
struct WildPulseCheckpoint final : WildCheckpoint {
  std::vector<core::InterArrivalTracker> trackers;
  std::unique_ptr<core::GlobalOptimizer> optimizer;
};

}  // namespace

void WildPolicy::initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                            sim::KeepAliveSchedule& schedule) {
  (void)trace;
  (void)schedule;
  predictors_.assign(deployment.function_count(),
                     predict::HybridHistogramPredictor(config_.predictor));
}

void WildPolicy::attach_observer(const obs::Observer* observer) {
  sim::KeepAlivePolicy::attach_observer(observer);
  horizon_hist_ = {};
  if (obs::MetricsRegistry* const m = metrics()) {
    horizon_hist_.bind(*m, "wild.keepalive_horizon", 64);
  }
}

predict::WindowPrediction WildPolicy::predict_window(trace::FunctionId f, trace::Minute t) {
  const obs::PhaseTimer timer(profiler(), obs::Phase::kPredict);
  auto& predictor = predictors_.at(f);
  predictor.observe_invocation(t);
  predict::WindowPrediction w = predictor.predict();
  w.keepalive_until = std::clamp<trace::Minute>(w.keepalive_until, 1, config_.max_horizon);
  w.prewarm_offset = std::clamp<trace::Minute>(w.prewarm_offset, 0, w.keepalive_until - 1);
  horizon_hist_.record(static_cast<std::size_t>(w.keepalive_until));
  return w;
}

void WildPolicy::on_invocation(trace::FunctionId f, trace::Minute t,
                               sim::KeepAliveSchedule& schedule) {
  const obs::PhaseTimer timer(profiler(), obs::Phase::kSchedule);
  const predict::WindowPrediction w = predict_window(f, t);

  // Release the container during the predicted idle head, keep the
  // high-quality variant alive from the pre-warm point to the horizon.
  // clear_from is bounded by the function's scheduled horizon, so dropping
  // the stale tail costs the old window's length, not the trace length.
  schedule.clear_from(f, t + 1);
  schedule.fill(f, t + 1 + w.prewarm_offset, t + 1 + w.keepalive_until,
                static_cast<int>(schedule.variant_count_of(f)) - 1);
}

std::unique_ptr<sim::PolicyCheckpoint> WildPolicy::checkpoint() const {
  auto snap = std::make_unique<WildCheckpoint>();
  snap->predictors = predictors_;
  return snap;
}

void WildPolicy::restore(const sim::PolicyCheckpoint* snapshot) {
  const auto* snap = dynamic_cast<const WildCheckpoint*>(snapshot);
  if (snap == nullptr) {
    throw std::invalid_argument("WildPolicy::restore: wrong snapshot type");
  }
  predictors_ = snap->predictors;
}

WildPulsePolicy::WildPulsePolicy() : WildPulsePolicy(Config{}) {}

WildPulsePolicy::WildPulsePolicy(Config config)
    : WildPolicy(config.wild), pulse_config_(config) {}

void WildPulsePolicy::initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                                 sim::KeepAliveSchedule& schedule) {
  WildPolicy::initialize(deployment, trace, schedule);

  core::InterArrivalTracker::Config tracker_config;
  tracker_config.local_window = pulse_config_.local_window;
  trackers_.assign(deployment.function_count(), core::InterArrivalTracker(tracker_config));

  core::GlobalOptimizer::Config opt_config;
  opt_config.peak.memory_threshold = pulse_config_.memory_threshold;
  opt_config.peak.local_window = pulse_config_.local_window;
  optimizer_ = std::make_unique<core::GlobalOptimizer>(deployment.function_count(), opt_config);
  optimizer_->reserve_horizon(static_cast<std::size_t>(trace.duration()));
  optimizer_->set_observer(observer());
}

void WildPulsePolicy::attach_observer(const obs::Observer* observer) {
  WildPolicy::attach_observer(observer);
  if (optimizer_) optimizer_->set_observer(observer);
}

void WildPulsePolicy::on_invocation(trace::FunctionId f, trace::Minute t,
                                    sim::KeepAliveSchedule& schedule) {
  const obs::PhaseTimer timer(profiler(), obs::Phase::kSchedule);
  // Wild forecasts the window ...
  const predict::WindowPrediction w = predict_window(f, t);

  core::InterArrivalTracker& tracker = trackers_.at(f);
  tracker.record(t);

  // ... and PULSE decides "which model variant should be kept active and
  // for how long" inside it (§IV, integration description).
  const std::size_t variants = schedule.variant_count_of(f);
  schedule.clear_from(f, t + 1);
  for (trace::Minute d = w.prewarm_offset; d < w.keepalive_until; ++d) {
    const std::size_t offset = static_cast<std::size_t>(d) + 1;
    const double p = tracker.probability(offset, t);
    const std::size_t v = core::select_variant(p, variants, pulse_config_.technique);
    schedule.set(f, t + 1 + d, static_cast<int>(v));
  }
}

void WildPulsePolicy::end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                                    const sim::MemoryHistory& history) {
  (void)history;
  const obs::PhaseTimer timer(profiler(), obs::Phase::kOptimize);
  optimizer_->flatten_peak(t, schedule, trackers_);
}

std::size_t WildPulsePolicy::cold_start_variant(trace::FunctionId f, trace::Minute t,
                                                const sim::Deployment& deployment) const {
  if (f < trackers_.size()) {
    if (const auto last = trackers_[f].last_invocation()) {
      if (t - *last <= trace::kKeepAliveWindow) return 0;
    }
  }
  return deployment.family_of(f).highest_index();
}

std::uint64_t WildPulsePolicy::downgrade_count() const {
  return optimizer_ ? optimizer_->total_downgrades() : 0;
}

std::unique_ptr<sim::PolicyCheckpoint> WildPulsePolicy::checkpoint() const {
  auto snap = std::make_unique<WildPulseCheckpoint>();
  snap->predictors = predictors_;
  snap->trackers = trackers_;
  if (optimizer_) snap->optimizer = std::make_unique<core::GlobalOptimizer>(*optimizer_);
  return snap;
}

void WildPulsePolicy::restore(const sim::PolicyCheckpoint* snapshot) {
  const auto* snap = dynamic_cast<const WildPulseCheckpoint*>(snapshot);
  if (snap == nullptr) {
    throw std::invalid_argument("WildPulsePolicy::restore: wrong snapshot type");
  }
  predictors_ = snap->predictors;
  trackers_ = snap->trackers;
  optimizer_ = snap->optimizer ? std::make_unique<core::GlobalOptimizer>(*snap->optimizer)
                               : nullptr;
  if (optimizer_) optimizer_->set_observer(observer());
}

}  // namespace pulse::policies
