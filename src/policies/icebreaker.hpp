#pragma once
// IceBreaker (Roy et al., ASPLOS'22) as the paper configures it: a fast
// Fourier-based forecaster predicts each function's upcoming invocation
// intensity and containers are warmed for the minutes where the predicted
// intensity crosses an activation threshold. The paper runs IceBreaker on a
// single node type, so its heterogeneous-node utility function is not
// exercised. IceBreaker is model-variant-unaware: it warms the
// highest-quality variant.
//
// IceBreakerPulsePolicy is the Figure 8 integration: IceBreaker's
// "function invocation predictor, which determines the concurrency of
// subsequent periods" is preserved, and PULSE maps the predicted intensity
// to a variant choice, then applies its global peak flattening.

#include <memory>
#include <string>
#include <vector>

#include "core/global_optimizer.hpp"
#include "core/interarrival.hpp"
#include "core/variant_selector.hpp"
#include "predict/sliding_dft.hpp"
#include "sim/policy.hpp"
#include "trace/analysis.hpp"

namespace pulse::policies {

class IceBreakerPolicy : public sim::KeepAlivePolicy {
 public:
  struct Config {
    /// History window fed to the FFT, minutes.
    std::size_t fft_window = 256;
    /// Number of dominant harmonics kept.
    std::size_t harmonics = 8;
    /// Forecast horizon == scheduling period, minutes.
    trace::Minute refresh_interval = trace::kKeepAliveWindow;
    /// Predicted invocations/minute at or above which the function is
    /// warmed for that minute.
    double activation_threshold = 0.30;
    /// Forecast through a per-function sliding DFT (O(fft_window) per
    /// minute, allocation-free once the window is full) instead of a full
    /// FFT refit per refresh. Off by default: the refit path is the
    /// bit-pinned reference; the sliding path agrees within tolerance
    /// (bit-identical right after each DFT re-anchor) and is what the
    /// online serving mode uses. Until a function has seen fft_window
    /// minutes the refit path still serves its forecasts (warm-up).
    bool streaming_dft = false;
  };

  IceBreakerPolicy();  // default Config
  explicit IceBreakerPolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "IceBreaker"; }

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override;

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override;

  void end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                     const sim::MemoryHistory& history) override;

  [[nodiscard]] std::unique_ptr<sim::PolicyCheckpoint> checkpoint() const override;
  void restore(const sim::PolicyCheckpoint* snapshot) override;

  /// Binds the icebreaker.* handle bundle (no name lookup per refresh).
  void attach_observer(const obs::Observer* observer) override;

 protected:
  /// Predicted invocation intensity of f for the next refresh interval.
  [[nodiscard]] std::vector<double> forecast(trace::FunctionId f) const;

  /// Hook for the PULSE integration: schedule function f for the horizon
  /// minutes (t+1 .. t+horizon) given the predicted intensities.
  virtual void apply_forecast(trace::FunctionId f, trace::Minute t,
                              const std::vector<double>& predicted,
                              sim::KeepAliveSchedule& schedule);

  Config config_;
  std::vector<std::vector<double>> history_;        // per function per-minute counts
  std::vector<std::uint32_t> current_minute_count_;  // accumulating minute t
  std::vector<predict::SlidingDft> dfts_;            // streaming_dft mode only
  std::vector<double> forecast_buffer_;              // streaming forecast scratch
  obs::CounterHandle refreshes_;                     // icebreaker.refreshes
};

class IceBreakerPulsePolicy : public IceBreakerPolicy {
 public:
  struct Config {
    IceBreakerPolicy::Config icebreaker{};
    trace::Minute local_window = 60;
    double memory_threshold = 0.10;
    core::ThresholdTechnique technique = core::ThresholdTechnique::kT1;
  };

  IceBreakerPulsePolicy();  // default Config
  explicit IceBreakerPulsePolicy(Config config);

  [[nodiscard]] std::string name() const override { return "IceBreaker+PULSE"; }

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override;

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override;

  void end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                     const sim::MemoryHistory& history) override;

  /// Forwards to the optimizer so its metric-handle bundle follows engine
  /// detach/re-attach (e.g. around a silent checkpoint replay).
  void attach_observer(const obs::Observer* observer) override;

  /// Drop-induced cold starts inside the recent-invocation window serve the
  /// lowest variant (the downgrade's decision); fresh ones the highest.
  [[nodiscard]] std::size_t cold_start_variant(trace::FunctionId f, trace::Minute t,
                                               const sim::Deployment& deployment) const override;

  [[nodiscard]] std::uint64_t downgrade_count() const override;

  [[nodiscard]] std::unique_ptr<sim::PolicyCheckpoint> checkpoint() const override;
  void restore(const sim::PolicyCheckpoint* snapshot) override;

 protected:
  void apply_forecast(trace::FunctionId f, trace::Minute t,
                      const std::vector<double>& predicted,
                      sim::KeepAliveSchedule& schedule) override;

 private:
  Config pulse_config_;
  std::vector<core::InterArrivalTracker> trackers_;
  std::unique_ptr<core::GlobalOptimizer> optimizer_;
};

inline IceBreakerPolicy::IceBreakerPolicy() : IceBreakerPolicy(Config{}) {}

}  // namespace pulse::policies
