#include "policies/icebreaker.hpp"

#include <algorithm>
#include <stdexcept>

#include "predict/divergence.hpp"
#include "predict/fft.hpp"

namespace pulse::policies {

namespace {

/// IceBreaker's post-initialize state: the per-function count series and
/// the accumulator of the minute in flight.
struct IceBreakerCheckpoint : sim::PolicyCheckpoint {
  std::vector<std::vector<double>> history;
  std::vector<std::uint32_t> current_minute_count;
  std::vector<predict::SlidingDft> dfts;
};

/// IceBreaker+PULSE adds the inter-arrival trackers and global optimizer.
struct IceBreakerPulseCheckpoint final : IceBreakerCheckpoint {
  std::vector<core::InterArrivalTracker> trackers;
  std::unique_ptr<core::GlobalOptimizer> optimizer;
};

}  // namespace

void IceBreakerPolicy::initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                                  sim::KeepAliveSchedule& schedule) {
  (void)schedule;
  history_.assign(deployment.function_count(), {});
  // The count series grows to exactly trace.duration(); reserving up front
  // keeps end_of_minute() off the allocator for the whole run.
  for (auto& series : history_) series.reserve(static_cast<std::size_t>(trace.duration()));
  current_minute_count_.assign(deployment.function_count(), 0);
  dfts_.clear();
  forecast_buffer_.clear();
  if (config_.streaming_dft) {
    dfts_.assign(deployment.function_count(), predict::SlidingDft(config_.fft_window));
    forecast_buffer_.assign(static_cast<std::size_t>(config_.refresh_interval), 0.0);
  }
}

void IceBreakerPolicy::attach_observer(const obs::Observer* observer) {
  sim::KeepAlivePolicy::attach_observer(observer);
  refreshes_ = {};
  if (obs::MetricsRegistry* const m = metrics()) {
    refreshes_.bind(*m, "icebreaker.refreshes");
  }
}

void IceBreakerPolicy::on_invocation(trace::FunctionId f, trace::Minute t,
                                     sim::KeepAliveSchedule& schedule) {
  (void)t;
  (void)schedule;
  // Only record; all scheduling is predictor-driven at period boundaries.
  current_minute_count_.at(f) += 1;
}

std::vector<double> IceBreakerPolicy::forecast(trace::FunctionId f) const {
  const obs::PhaseTimer timer(profiler(), obs::Phase::kPredict);
  const auto& series = history_.at(f);
  const std::size_t window = std::min(config_.fft_window, series.size());
  const std::span<const double> recent(series.data() + (series.size() - window), window);
  std::vector<double> predicted = predict::harmonic_extrapolate(
      recent, config_.harmonics, static_cast<std::size_t>(config_.refresh_interval));
  predict::ensure_finite(predicted, "icebreaker/fft");
  return predicted;
}

void IceBreakerPolicy::apply_forecast(trace::FunctionId f, trace::Minute t,
                                      const std::vector<double>& predicted,
                                      sim::KeepAliveSchedule& schedule) {
  const obs::PhaseTimer timer(profiler(), obs::Phase::kSchedule);
  const int highest = static_cast<int>(schedule.variant_count_of(f)) - 1;
  for (std::size_t d = 0; d < predicted.size(); ++d) {
    const trace::Minute m = t + 1 + static_cast<trace::Minute>(d);
    if (predicted[d] >= config_.activation_threshold) {
      schedule.set(f, m, highest);
    } else {
      schedule.set(f, m, sim::kNoVariant);
    }
  }
}

void IceBreakerPolicy::end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                                     const sim::MemoryHistory& history) {
  (void)history;
  // Close the accounting for minute t.
  for (trace::FunctionId f = 0; f < history_.size(); ++f) {
    history_[f].push_back(static_cast<double>(current_minute_count_[f]));
    if (!dfts_.empty()) dfts_[f].push(static_cast<double>(current_minute_count_[f]));
    current_minute_count_[f] = 0;
  }

  // At period boundaries, forecast and schedule the next period.
  if ((t + 1) % config_.refresh_interval != 0) return;
  refreshes_.bump();
  refreshes_.flush();  // refresh boundary == minute boundary
  if (obs::TraceSink* const s = sink()) {
    s->record({obs::EventType::kPolicyDecision, t, obs::TraceEvent::kNoFunction, -1,
               static_cast<double>(history_.size()), "forecast_refresh"});
  }
  for (trace::FunctionId f = 0; f < history_.size(); ++f) {
    if (history_[f].empty()) continue;
    if (!dfts_.empty() && dfts_[f].ready()) {
      // Streaming path: the sliding DFT already tracks the last fft_window
      // minutes; extrapolate into the preallocated buffer, no allocation.
      const obs::PhaseTimer timer(profiler(), obs::Phase::kPredict);
      dfts_[f].extrapolate_into(config_.harmonics,
                                static_cast<std::size_t>(config_.refresh_interval),
                                forecast_buffer_);
      predict::ensure_finite(forecast_buffer_, "icebreaker/sliding-dft");
      apply_forecast(f, t, forecast_buffer_, schedule);
    } else {
      apply_forecast(f, t, forecast(f), schedule);
    }
  }
}

std::unique_ptr<sim::PolicyCheckpoint> IceBreakerPolicy::checkpoint() const {
  auto snap = std::make_unique<IceBreakerCheckpoint>();
  snap->history = history_;
  snap->current_minute_count = current_minute_count_;
  snap->dfts = dfts_;
  return snap;
}

void IceBreakerPolicy::restore(const sim::PolicyCheckpoint* snapshot) {
  const auto* snap = dynamic_cast<const IceBreakerCheckpoint*>(snapshot);
  if (snap == nullptr) {
    throw std::invalid_argument("IceBreakerPolicy::restore: wrong snapshot type");
  }
  history_ = snap->history;
  current_minute_count_ = snap->current_minute_count;
  dfts_ = snap->dfts;
}

IceBreakerPulsePolicy::IceBreakerPulsePolicy() : IceBreakerPulsePolicy(Config{}) {}

IceBreakerPulsePolicy::IceBreakerPulsePolicy(Config config)
    : IceBreakerPolicy(config.icebreaker), pulse_config_(config) {}

void IceBreakerPulsePolicy::initialize(const sim::Deployment& deployment,
                                       const trace::Trace& trace,
                                       sim::KeepAliveSchedule& schedule) {
  IceBreakerPolicy::initialize(deployment, trace, schedule);

  core::InterArrivalTracker::Config tracker_config;
  tracker_config.local_window = pulse_config_.local_window;
  trackers_.assign(deployment.function_count(), core::InterArrivalTracker(tracker_config));

  core::GlobalOptimizer::Config opt_config;
  opt_config.peak.memory_threshold = pulse_config_.memory_threshold;
  opt_config.peak.local_window = pulse_config_.local_window;
  optimizer_ = std::make_unique<core::GlobalOptimizer>(deployment.function_count(), opt_config);
  optimizer_->reserve_horizon(static_cast<std::size_t>(trace.duration()));
  optimizer_->set_observer(observer());
}

void IceBreakerPulsePolicy::attach_observer(const obs::Observer* observer) {
  IceBreakerPolicy::attach_observer(observer);
  if (optimizer_) optimizer_->set_observer(observer);
}

void IceBreakerPulsePolicy::on_invocation(trace::FunctionId f, trace::Minute t,
                                          sim::KeepAliveSchedule& schedule) {
  IceBreakerPolicy::on_invocation(f, t, schedule);
  trackers_.at(f).record(t);
}

void IceBreakerPulsePolicy::apply_forecast(trace::FunctionId f, trace::Minute t,
                                           const std::vector<double>& predicted,
                                           sim::KeepAliveSchedule& schedule) {
  // PULSE maps the predicted concurrency to an invocation likelihood and
  // selects the variant greedily instead of always warming the highest one.
  const obs::PhaseTimer timer(profiler(), obs::Phase::kSchedule);
  const std::size_t variants = schedule.variant_count_of(f);
  for (std::size_t d = 0; d < predicted.size(); ++d) {
    const trace::Minute m = t + 1 + static_cast<trace::Minute>(d);
    if (predicted[d] < config_.activation_threshold) {
      schedule.set(f, m, sim::kNoVariant);
      continue;
    }
    const double likelihood = std::clamp(predicted[d], 0.0, 1.0);
    const std::size_t v = core::select_variant(likelihood, variants, pulse_config_.technique);
    schedule.set(f, m, static_cast<int>(v));
  }
}

void IceBreakerPulsePolicy::end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                                          const sim::MemoryHistory& history) {
  IceBreakerPolicy::end_of_minute(t, schedule, history);
  const obs::PhaseTimer timer(profiler(), obs::Phase::kOptimize);
  optimizer_->flatten_peak(t, schedule, trackers_);
}

std::size_t IceBreakerPulsePolicy::cold_start_variant(
    trace::FunctionId f, trace::Minute t, const sim::Deployment& deployment) const {
  if (f < trackers_.size()) {
    if (const auto last = trackers_[f].last_invocation()) {
      if (t - *last <= trace::kKeepAliveWindow) return 0;
    }
  }
  return deployment.family_of(f).highest_index();
}

std::uint64_t IceBreakerPulsePolicy::downgrade_count() const {
  return optimizer_ ? optimizer_->total_downgrades() : 0;
}

std::unique_ptr<sim::PolicyCheckpoint> IceBreakerPulsePolicy::checkpoint() const {
  auto snap = std::make_unique<IceBreakerPulseCheckpoint>();
  snap->history = history_;
  snap->current_minute_count = current_minute_count_;
  snap->dfts = dfts_;
  snap->trackers = trackers_;
  if (optimizer_) snap->optimizer = std::make_unique<core::GlobalOptimizer>(*optimizer_);
  return snap;
}

void IceBreakerPulsePolicy::restore(const sim::PolicyCheckpoint* snapshot) {
  const auto* snap = dynamic_cast<const IceBreakerPulseCheckpoint*>(snapshot);
  if (snap == nullptr) {
    throw std::invalid_argument("IceBreakerPulsePolicy::restore: wrong snapshot type");
  }
  history_ = snap->history;
  current_minute_count_ = snap->current_minute_count;
  dfts_ = snap->dfts;
  trackers_ = snap->trackers;
  optimizer_ = snap->optimizer ? std::make_unique<core::GlobalOptimizer>(*snap->optimizer)
                               : nullptr;
  if (optimizer_) optimizer_->set_observer(observer());
}

}  // namespace pulse::policies
