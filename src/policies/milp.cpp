#include "policies/milp.hpp"

#include <algorithm>

namespace pulse::policies {

namespace {

struct SearchState {
  const MilpProblem* problem;
  /// suffix_best[i]: sum over items >= i of each item's best option utility
  /// (the optimistic bound ignoring memory).
  std::vector<double> suffix_best;
  /// Per item, option indices sorted by descending utility.
  std::vector<std::vector<std::size_t>> option_order;
  std::vector<int> current;
  MilpSolution best;
  std::size_t node_limit = 0;
  bool budget_exhausted = false;
};

void record_if_better(SearchState& state, double utility, double memory) {
  if (utility > state.best.utility) {
    state.best.utility = utility;
    state.best.memory_mb = memory;
    state.best.choice = state.current;
  }
}

void search(SearchState& state, std::size_t item, double utility, double memory) {
  if (state.budget_exhausted) return;
  if (state.node_limit != 0 && state.best.nodes_explored >= state.node_limit) {
    state.budget_exhausted = true;
    return;
  }
  ++state.best.nodes_explored;
  const MilpProblem& problem = *state.problem;

  if (item == problem.items.size()) {
    record_if_better(state, utility, memory);
    return;
  }

  // Bound: even taking every remaining item's best option can't beat the
  // incumbent -> prune.
  if (utility + state.suffix_best[item] <= state.best.utility) return;

  const auto& options = problem.items[item];
  for (std::size_t i : state.option_order[item]) {
    const MilpOption& opt = options[i];
    if (memory + opt.memory_mb > problem.memory_budget_mb) continue;
    state.current[item] = static_cast<int>(i);
    search(state, item + 1, utility + opt.utility, memory + opt.memory_mb);
  }

  // "Select none" branch.
  state.current[item] = -1;
  search(state, item + 1, utility, memory);
  state.current[item] = -1;
}

/// Greedy warm start: walk items in input order, take the best-utility
/// option that still fits. Gives the branch-and-bound a strong incumbent so
/// the utility bound prunes immediately.
MilpSolution greedy_incumbent(const MilpProblem& problem,
                              const std::vector<std::vector<std::size_t>>& option_order) {
  MilpSolution s;
  s.choice.assign(problem.items.size(), -1);
  double memory = 0.0;
  for (std::size_t i = 0; i < problem.items.size(); ++i) {
    for (std::size_t o : option_order[i]) {
      const MilpOption& opt = problem.items[i][o];
      if (memory + opt.memory_mb <= problem.memory_budget_mb) {
        s.choice[i] = static_cast<int>(o);
        s.utility += opt.utility;
        s.memory_mb = memory += opt.memory_mb;
        break;
      }
    }
  }
  return s;
}

}  // namespace

MilpSolution solve_milp(const MilpProblem& problem) {
  SearchState state;
  state.problem = &problem;
  state.node_limit = problem.node_limit;
  state.current.assign(problem.items.size(), -1);

  state.option_order.resize(problem.items.size());
  for (std::size_t i = 0; i < problem.items.size(); ++i) {
    auto& order = state.option_order[i];
    order.resize(problem.items[i].size());
    for (std::size_t o = 0; o < order.size(); ++o) order[o] = o;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return problem.items[i][a].utility > problem.items[i][b].utility;
    });
  }

  state.suffix_best.assign(problem.items.size() + 1, 0.0);
  for (std::size_t i = problem.items.size(); i-- > 0;) {
    double best_option = 0.0;
    for (const auto& opt : problem.items[i]) best_option = std::max(best_option, opt.utility);
    state.suffix_best[i] = state.suffix_best[i + 1] + best_option;
  }

  // Seed with the greedy feasible solution (handles the all-none case too).
  state.best = greedy_incumbent(problem, state.option_order);

  search(state, 0, 0.0, 0.0);
  state.best.optimal = !state.budget_exhausted;
  return state.best;
}

}  // namespace pulse::policies
