#pragma once
// The "Intelligent Solution" of Tables II/III: an oracle that looks at the
// *actual* invocations inside each keep-alive window — functions that will
// be invoked more keep the high-quality model alive, the rest the
// low-quality one. Not deployable (it reads the future); it exists to bound
// how well any variant-assignment heuristic could do.

#include <string>

#include "sim/policy.hpp"
#include "trace/analysis.hpp"

namespace pulse::policies {

class OraclePolicy : public sim::KeepAlivePolicy {
 public:
  struct Config {
    trace::Minute keepalive_window = trace::kKeepAliveWindow;
    /// A function keeps the high-quality variant when its actual invocation
    /// count inside the upcoming window is >= this threshold. The paper's
    /// "higher number of actual invocations" selection: with the default of
    /// 2, singly-invoked windows keep the low variant, which is why the
    /// intelligent solution lands slightly below All-High in accuracy and
    /// service time (Tables II/III).
    std::uint32_t high_quality_threshold = 2;
  };

  OraclePolicy();  // default Config
  explicit OraclePolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "Intelligent(oracle)"; }

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override {
    (void)deployment;
    (void)schedule;
    trace_ = &trace;
  }

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override {
    const auto& family = schedule.deployment().family_of(f);
    std::uint32_t future = 0;
    for (trace::Minute d = 1; d <= config_.keepalive_window; ++d) {
      future += trace_->count(f, t + d);
    }
    const int v = future >= config_.high_quality_threshold
                      ? static_cast<int>(family.highest_index())
                      : 0;
    schedule.fill(f, t + 1, t + 1 + config_.keepalive_window, v);
  }

 private:
  Config config_;
  const trace::Trace* trace_ = nullptr;
};

inline OraclePolicy::OraclePolicy() : OraclePolicy(Config{}) {}

}  // namespace pulse::policies
