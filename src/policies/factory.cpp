#include "policies/factory.hpp"

#include <stdexcept>

#include "core/pulse_policy.hpp"
#include "fault/guarded_policy.hpp"
#include "policies/fixed_keepalive.hpp"
#include "policies/icebreaker.hpp"
#include "policies/ideal.hpp"
#include "policies/milp_policy.hpp"
#include "policies/oracle.hpp"
#include "policies/random_mix.hpp"
#include "policies/wild.hpp"

namespace pulse::policies {

std::vector<std::string> policy_names() {
  return {"openwhisk", "all-low",   "random-mix", "oracle", "ideal",
          "pulse",     "pulse-individual", "pulse-t2", "pulse-adaptive", "wild",
          "wild+pulse", "icebreaker", "icebreaker+pulse", "milp"};
}

std::unique_ptr<sim::KeepAlivePolicy> make_policy(std::string_view name) {
  // "guarded:<name>" wraps any factory policy in the fault barrier.
  if (constexpr std::string_view prefix = "guarded:"; name.substr(0, prefix.size()) == prefix) {
    return std::make_unique<fault::GuardedPolicy>(make_policy(name.substr(prefix.size())));
  }
  if (name == "openwhisk") {
    return std::make_unique<FixedKeepAlivePolicy>();
  }
  if (name == "all-low") {
    FixedKeepAlivePolicy::Config config;
    config.variant = FixedVariant::kLowest;
    return std::make_unique<FixedKeepAlivePolicy>(config);
  }
  if (name == "random-mix") {
    return std::make_unique<RandomMixPolicy>();
  }
  if (name == "oracle") {
    return std::make_unique<OraclePolicy>();
  }
  if (name == "ideal") {
    return std::make_unique<IdealPolicy>();
  }
  if (name == "pulse") {
    return std::make_unique<core::PulsePolicy>();
  }
  if (name == "pulse-individual") {
    core::PulsePolicy::Config config;
    config.enable_global_optimization = false;
    return std::make_unique<core::PulsePolicy>(config);
  }
  if (name == "pulse-t2") {
    core::PulsePolicy::Config config;
    config.technique = core::ThresholdTechnique::kT2;
    return std::make_unique<core::PulsePolicy>(config);
  }
  if (name == "pulse-adaptive") {
    core::PulsePolicy::Config config;
    config.adaptive_window = true;
    return std::make_unique<core::PulsePolicy>(config);
  }
  if (name == "wild") {
    return std::make_unique<WildPolicy>();
  }
  if (name == "wild+pulse") {
    return std::make_unique<WildPulsePolicy>();
  }
  if (name == "icebreaker") {
    return std::make_unique<IceBreakerPolicy>();
  }
  if (name == "icebreaker+pulse") {
    return std::make_unique<IceBreakerPulsePolicy>();
  }
  if (name == "milp") {
    return std::make_unique<MilpPolicy>();
  }
  throw std::invalid_argument("make_policy: unknown policy '" + std::string(name) + "'");
}

}  // namespace pulse::policies
