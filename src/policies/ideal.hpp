#pragma once
// The ideal keep-alive reference of Figure 6(b): with perfect foreknowledge,
// the highest-quality container is alive exactly during the minutes the
// function is actually invoked — zero cold starts at the minimum possible
// keep-alive cost for all-warm, all-high service. Not deployable; it bounds
// what any keep-alive policy could achieve.

#include <string>

#include "sim/policy.hpp"

namespace pulse::policies {

class IdealPolicy : public sim::KeepAlivePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "Ideal(oracle-cost)"; }

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override {
    for (trace::FunctionId f = 0; f < trace.function_count(); ++f) {
      const int high = static_cast<int>(deployment.family_of(f).highest_index());
      for (trace::Minute t : trace.invocation_minutes(f)) {
        schedule.set(f, t, high);
      }
    }
  }

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override {
    // Everything was pre-scheduled; nothing to do per invocation.
    (void)f;
    (void)t;
    (void)schedule;
  }
};

}  // namespace pulse::policies
