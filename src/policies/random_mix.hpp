#pragma once
// The "Random High Quality Low Quality" approach of Tables II/III: each
// function is randomly assigned either the highest- or the lowest-quality
// variant for its keep-alive windows, with the assignment balanced so that
// (as the paper ensures) the number of high- and low-assigned functions
// stays even.

#include <string>
#include <vector>

#include "sim/policy.hpp"
#include "trace/analysis.hpp"
#include "util/rng.hpp"

namespace pulse::policies {

class RandomMixPolicy : public sim::KeepAlivePolicy {
 public:
  struct Config {
    trace::Minute keepalive_window = trace::kKeepAliveWindow;
    std::uint64_t seed = 99;
  };

  RandomMixPolicy();  // default Config
  explicit RandomMixPolicy(Config config) : config_(config), rng_(config.seed) {}

  [[nodiscard]] std::string name() const override { return "RandomMix(high/low)"; }

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override {
    (void)trace;
    (void)schedule;
    // Balanced random assignment: shuffle function ids, first half high.
    std::vector<trace::FunctionId> order(deployment.function_count());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.bounded(static_cast<std::uint32_t>(i))]);
    }
    high_assigned_.assign(deployment.function_count(), false);
    for (std::size_t i = 0; i < order.size() / 2 + order.size() % 2; ++i) {
      high_assigned_[order[i]] = true;
    }
  }

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override {
    const auto& family = schedule.deployment().family_of(f);
    const int v = high_assigned_.at(f) ? static_cast<int>(family.highest_index()) : 0;
    schedule.fill(f, t + 1, t + 1 + config_.keepalive_window, v);
  }

  [[nodiscard]] std::size_t cold_start_variant(trace::FunctionId f, trace::Minute t,
                                               const sim::Deployment& deployment) const override {
    (void)t;
    return high_assigned_.at(f) ? deployment.family_of(f).highest_index() : 0;
  }

  [[nodiscard]] bool is_high_assigned(trace::FunctionId f) const { return high_assigned_.at(f); }

 private:
  Config config_;
  util::Pcg32 rng_;
  std::vector<bool> high_assigned_;
};

inline RandomMixPolicy::RandomMixPolicy() : RandomMixPolicy(Config{}) {}

}  // namespace pulse::policies
