#pragma once
// The MILP-based keep-alive policy of Figure 9: identical function-centric
// optimization to PULSE, but peaks are resolved by solving the
// multiple-choice knapsack over all kept-alive models in one shot instead
// of PULSE's iterative lowest-utility downgrades. One-shot selection lacks
// PULSE's per-round priority re-normalization ("iterative adaptability"),
// which is why the paper observes it favours lower-quality variants — and
// its search cost is what makes its decision overhead an order of magnitude
// higher.

#include <memory>
#include <vector>

#include "core/global_optimizer.hpp"
#include "core/interarrival.hpp"
#include "core/peak_detector.hpp"
#include "core/priority.hpp"
#include "core/variant_selector.hpp"
#include "policies/milp.hpp"
#include "sim/policy.hpp"
#include "trace/analysis.hpp"

namespace pulse::policies {

class MilpPolicy : public sim::KeepAlivePolicy {
 public:
  struct Config {
    trace::Minute keepalive_window = trace::kKeepAliveWindow;
    trace::Minute local_window = 60;
    double memory_threshold = 0.10;
    core::ThresholdTechnique technique = core::ThresholdTechnique::kT1;
  };

  MilpPolicy();  // default Config
  explicit MilpPolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "MILP"; }

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override;

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override;

  void end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                     const sim::MemoryHistory& history) override;

  /// Same cold-start rule as PULSE: drop-induced colds serve the lowest
  /// variant, fresh ones the highest.
  [[nodiscard]] std::size_t cold_start_variant(trace::FunctionId f, trace::Minute t,
                                               const sim::Deployment& deployment) const override;

  [[nodiscard]] std::uint64_t downgrade_count() const override { return downgrades_; }

  /// Total branch-and-bound nodes explored across all peaks (overhead
  /// diagnostics).
  [[nodiscard]] std::uint64_t solver_nodes() const noexcept { return solver_nodes_; }

  [[nodiscard]] std::unique_ptr<sim::PolicyCheckpoint> checkpoint() const override;
  void restore(const sim::PolicyCheckpoint* snapshot) override;

  /// Binds the milp.* handle bundle (no name lookup per solve).
  void attach_observer(const obs::Observer* observer) override;

 private:
  Config config_;
  std::vector<core::InterArrivalTracker> trackers_;
  std::unique_ptr<core::PeakDetector> detector_;
  std::unique_ptr<core::PriorityStructure> priority_;
  core::DemandHistory demand_;
  std::uint64_t downgrades_ = 0;
  std::uint64_t solver_nodes_ = 0;

  /// Pre-resolved milp.* handles, flushed at each solve (a minute boundary).
  struct Metrics {
    obs::CounterHandle solves;
    obs::CounterHandle solver_nodes;
    obs::CounterHandle downgrades;
  };
  Metrics metrics_handles_;

  /// Reused across peak minutes (allocation-free hot path).
  std::vector<std::pair<trace::FunctionId, std::size_t>> kept_buffer_;
  std::vector<double> priority_buffer_;
};

inline MilpPolicy::MilpPolicy() : MilpPolicy(Config{}) {}

}  // namespace pulse::policies
