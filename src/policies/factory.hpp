#pragma once
// Named policy construction for examples and sweep tooling. Every policy in
// the repository is reachable from its paper-facing name.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/policy.hpp"

namespace pulse::policies {

/// Names accepted by make_policy().
[[nodiscard]] std::vector<std::string> policy_names();

/// Creates a fresh policy instance by name (default configurations):
///   "openwhisk"        fixed 10-minute keep-alive, highest-quality variant
///   "all-low"          fixed 10-minute keep-alive, lowest-quality variant
///   "random-mix"       balanced random high/low assignment
///   "oracle"           the Tables II/III intelligent (future-peeking) solution
///   "ideal"            Fig. 6(b)'s ideal: alive exactly during invocation minutes
///   "pulse"            full PULSE (T1, 60-minute window, 10% threshold)
///   "pulse-individual" PULSE without cross-function optimization (Fig. 4b)
///   "pulse-t2"         full PULSE with threshold technique T2
///   "pulse-adaptive"   PULSE with per-function adaptive window lengths
///   "wild"             Serverless in the Wild
///   "wild+pulse"       Wild windows + PULSE variants and peak flattening
///   "icebreaker"       IceBreaker FFT predictor
///   "icebreaker+pulse" IceBreaker predictor + PULSE variants and flattening
///   "milp"             MILP-based cross-function optimization (Fig. 9)
/// Any name may be prefixed with "guarded:" (e.g. "guarded:pulse") to wrap
/// the policy in fault::GuardedPolicy, which absorbs policy exceptions and
/// predictor divergence by degrading to a fixed keep-alive fallback.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<sim::KeepAlivePolicy> make_policy(std::string_view name);

}  // namespace pulse::policies
