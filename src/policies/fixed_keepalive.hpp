#pragma once
// The provider baseline: OpenWhisk's fixed keep-alive policy ("keep the
// container alive for 10 minutes after its last invocation"), which the
// paper notes matches AWS/Google/Azure Functions behaviour. The kept
// variant is fixed — the highest-quality one for the OpenWhisk baseline,
// the lowest for the "All Low Quality" approach of Tables II/III.

#include <string>

#include "sim/policy.hpp"
#include "trace/analysis.hpp"

namespace pulse::policies {

enum class FixedVariant {
  kHighest,  // OpenWhisk / "All High Quality"
  kLowest,   // "All Low Quality"
};

class FixedKeepAlivePolicy : public sim::KeepAlivePolicy {
 public:
  struct Config {
    trace::Minute keepalive_window = trace::kKeepAliveWindow;
    FixedVariant variant = FixedVariant::kHighest;
  };

  FixedKeepAlivePolicy();  // default Config
  explicit FixedKeepAlivePolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override {
    return config_.variant == FixedVariant::kHighest ? "OpenWhisk(fixed-high)"
                                                     : "Fixed(low)";
  }

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override {
    const auto& family = schedule.deployment().family_of(f);
    const int v = config_.variant == FixedVariant::kHighest
                      ? static_cast<int>(family.highest_index())
                      : 0;
    schedule.fill(f, t + 1, t + 1 + config_.keepalive_window, v);
  }

  [[nodiscard]] std::size_t cold_start_variant(trace::FunctionId f, trace::Minute t,
                                               const sim::Deployment& deployment) const override {
    (void)t;
    return config_.variant == FixedVariant::kHighest
               ? deployment.family_of(f).highest_index()
               : 0;
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

inline FixedKeepAlivePolicy::FixedKeepAlivePolicy() : FixedKeepAlivePolicy(Config{}) {}

}  // namespace pulse::policies
