#pragma once
// Serverless in the Wild (Shahrad et al., ATC'20) as the paper configures
// it: the hybrid histogram predicts, per function, a pre-warm offset and a
// keep-alive horizon after every invocation; the container is released
// until the pre-warm point and kept alive from there to the horizon. Wild
// is model-variant-unaware, so it always keeps the highest-quality variant
// (the paper's "conventional practice of invoking high-quality models
// indiscriminately").
//
// WildPulsePolicy is the Figure 8 integration: Wild's predicted window is
// preserved, then PULSE's function-centric optimization picks the variant
// per minute inside that window and PULSE's global optimizer flattens
// keep-alive memory peaks.

#include <memory>
#include <string>
#include <vector>

#include "core/global_optimizer.hpp"
#include "core/interarrival.hpp"
#include "core/variant_selector.hpp"
#include "predict/hybrid_histogram.hpp"
#include "sim/policy.hpp"
#include "trace/analysis.hpp"

namespace pulse::policies {

class WildPolicy : public sim::KeepAlivePolicy {
 public:
  struct Config {
    predict::HybridHistogramPredictor::Config predictor{};
    /// Hard cap on the scheduled keep-alive horizon, minutes (keeps tail
    /// predictions from pinning containers for hours).
    trace::Minute max_horizon = 240;
  };

  WildPolicy();  // default Config
  explicit WildPolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "Wild"; }

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override;

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override;

  [[nodiscard]] const predict::HybridHistogramPredictor& predictor(trace::FunctionId f) const {
    return predictors_.at(f);
  }

  [[nodiscard]] std::unique_ptr<sim::PolicyCheckpoint> checkpoint() const override;
  void restore(const sim::PolicyCheckpoint* snapshot) override;

  /// Binds the wild.* handle bundle; per-invocation emission then never
  /// resolves a metric name.
  void attach_observer(const obs::Observer* observer) override;

 protected:
  /// Clamped prediction for f's window after an invocation at t.
  [[nodiscard]] predict::WindowPrediction predict_window(trace::FunctionId f,
                                                         trace::Minute t);

  Config config_;
  std::vector<predict::HybridHistogramPredictor> predictors_;
  obs::HistogramHandle horizon_hist_;  // wild.keepalive_horizon
};

class WildPulsePolicy : public WildPolicy {
 public:
  struct Config {
    WildPolicy::Config wild{};
    trace::Minute local_window = 60;
    double memory_threshold = 0.10;
    core::ThresholdTechnique technique = core::ThresholdTechnique::kT1;
  };

  WildPulsePolicy();  // default Config
  explicit WildPulsePolicy(Config config);

  [[nodiscard]] std::string name() const override { return "Wild+PULSE"; }

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override;

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override;

  void end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                     const sim::MemoryHistory& history) override;

  /// Forwards to the optimizer so its metric-handle bundle follows engine
  /// detach/re-attach (e.g. around a silent checkpoint replay).
  void attach_observer(const obs::Observer* observer) override;

  /// Drop-induced cold starts inside the recent-invocation window serve the
  /// lowest variant (the downgrade's decision); fresh ones the highest.
  [[nodiscard]] std::size_t cold_start_variant(trace::FunctionId f, trace::Minute t,
                                               const sim::Deployment& deployment) const override;

  [[nodiscard]] std::uint64_t downgrade_count() const override;

  [[nodiscard]] std::unique_ptr<sim::PolicyCheckpoint> checkpoint() const override;
  void restore(const sim::PolicyCheckpoint* snapshot) override;

 private:
  Config pulse_config_;
  std::vector<core::InterArrivalTracker> trackers_;
  std::unique_ptr<core::GlobalOptimizer> optimizer_;
};

inline WildPolicy::WildPolicy() : WildPolicy(Config{}) {}

}  // namespace pulse::policies
