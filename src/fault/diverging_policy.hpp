#pragma once
// DivergingPolicy: a chaos instrument for the guard and the benches.
//
// It delegates to a real policy until a configured minute, after which its
// "predictor" diverges the way an unfenced ARIMA does on pathological data:
// an AR model is fitted on a NaN-poisoned gap series, its forecast comes
// back non-finite, and predict::ensure_finite turns that into a
// PredictorDivergence. Run unguarded, that exception escapes
// SimulationEngine::run and kills the replay — exactly the failure mode the
// tentpole hardens against. Wrapped in GuardedPolicy, the run completes on
// the fixed-keep-alive fallback with the incident counted.

#include <memory>
#include <string>

#include "sim/policy.hpp"

namespace pulse::fault {

class DivergingPolicy : public sim::KeepAlivePolicy {
 public:
  struct Config {
    /// First minute at which the predictor diverges.
    trace::Minute diverge_at = 0;
  };

  explicit DivergingPolicy(std::unique_ptr<sim::KeepAlivePolicy> inner);  // default Config
  DivergingPolicy(std::unique_ptr<sim::KeepAlivePolicy> inner, Config config);

  [[nodiscard]] std::string name() const override;

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override;

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override;

  void end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                     const sim::MemoryHistory& history) override;

  [[nodiscard]] std::size_t cold_start_variant(trace::FunctionId f, trace::Minute t,
                                               const sim::Deployment& deployment) const override;

  [[nodiscard]] std::uint64_t downgrade_count() const override;

  /// The divergence trigger is pure config; only the inner policy carries
  /// state, so the snapshot is forwarded unchanged.
  [[nodiscard]] std::unique_ptr<sim::PolicyCheckpoint> checkpoint() const override {
    return inner_->checkpoint();
  }
  void restore(const sim::PolicyCheckpoint* snapshot) override {
    inner_->restore(snapshot);
  }

 private:
  std::unique_ptr<sim::KeepAlivePolicy> inner_;
  Config config_;
};

}  // namespace pulse::fault
