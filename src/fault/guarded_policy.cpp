#include "fault/guarded_policy.hpp"

#include <exception>
#include <stdexcept>

namespace pulse::fault {

namespace {

struct GuardedCheckpoint final : sim::PolicyCheckpoint {
  std::uint64_t incidents = 0;
  bool degraded = false;
  trace::Minute degraded_since = -1;
  std::string first_incident;
  std::unique_ptr<sim::PolicyCheckpoint> inner;
};

}  // namespace

GuardedPolicy::GuardedPolicy(std::unique_ptr<sim::KeepAlivePolicy> inner)
    : GuardedPolicy(std::move(inner), Config{}) {}

GuardedPolicy::GuardedPolicy(std::unique_ptr<sim::KeepAlivePolicy> inner, Config config)
    : inner_(std::move(inner)), config_(config) {
  if (!inner_) throw std::invalid_argument("GuardedPolicy: inner policy is null");
}

std::string GuardedPolicy::name() const {
  try {
    return "Guarded(" + inner_->name() + ")";
  } catch (const std::exception&) {
    return "Guarded(?)";
  }
}

void GuardedPolicy::attach_observer(const obs::Observer* observer) {
  sim::KeepAlivePolicy::attach_observer(observer);
  inner_->attach_observer(observer);
  incident_counter_ = {};
  if (obs::MetricsRegistry* const m = metrics()) {
    incident_counter_.bind(*m, "guard.incidents");
  }
}

void GuardedPolicy::record_incident(trace::Minute t, const char* what) const {
  ++incidents_;
  if (!degraded_) {
    degraded_ = true;
    degraded_since_ = t;
    first_incident_ = what;
  }
  // The caught message is dynamic, so the event carries a static tag; the
  // first message itself stays available via first_incident().
  if (obs::TraceSink* const s = sink()) {
    s->record({obs::EventType::kFault, t, obs::TraceEvent::kNoFunction, -1,
               static_cast<double>(incidents_), "guard_incident"});
  }
  // Incidents are rare and must be visible immediately (a snapshot can be
  // taken mid-run after a crash), so bump and flush in one step.
  incident_counter_.bump();
  incident_counter_.flush();
}

void GuardedPolicy::initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                               sim::KeepAliveSchedule& schedule) {
  try {
    inner_->initialize(deployment, trace, schedule);
  } catch (const std::exception& e) {
    record_incident(0, e.what());
  }
}

void GuardedPolicy::on_invocation(trace::FunctionId f, trace::Minute t,
                                  sim::KeepAliveSchedule& schedule) {
  if (!degraded_) {
    try {
      inner_->on_invocation(f, t, schedule);
      return;
    } catch (const std::exception& e) {
      record_incident(t, e.what());
      // The inner policy may have left a partial window; the fallback fill
      // below overwrites the minutes that matter.
    }
  }
  const auto& family = schedule.deployment().family_of(f);
  schedule.fill(f, t + 1, t + 1 + config_.fallback_window,
                static_cast<int>(family.highest_index()));
}

void GuardedPolicy::end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                                  const sim::MemoryHistory& history) {
  if (degraded_) return;  // the fixed fallback needs no end-of-minute work
  try {
    inner_->end_of_minute(t, schedule, history);
  } catch (const std::exception& e) {
    record_incident(t, e.what());
  }
}

std::size_t GuardedPolicy::cold_start_variant(trace::FunctionId f, trace::Minute t,
                                              const sim::Deployment& deployment) const {
  if (!degraded_) {
    try {
      return inner_->cold_start_variant(f, t, deployment);
    } catch (const std::exception& e) {
      record_incident(t, e.what());
    }
  }
  return deployment.family_of(f).highest_index();
}

std::uint64_t GuardedPolicy::downgrade_count() const {
  try {
    return inner_->downgrade_count();
  } catch (const std::exception&) {
    return 0;
  }
}

std::unique_ptr<sim::PolicyCheckpoint> GuardedPolicy::checkpoint() const {
  auto snap = std::make_unique<GuardedCheckpoint>();
  snap->incidents = incidents_;
  snap->degraded = degraded_;
  snap->degraded_since = degraded_since_;
  snap->first_incident = first_incident_;
  snap->inner = inner_->checkpoint();
  return snap;
}

void GuardedPolicy::restore(const sim::PolicyCheckpoint* snapshot) {
  const auto* snap = dynamic_cast<const GuardedCheckpoint*>(snapshot);
  if (snap == nullptr) {
    throw std::invalid_argument("GuardedPolicy::restore: wrong snapshot type");
  }
  incidents_ = snap->incidents;
  degraded_ = snap->degraded;
  degraded_since_ = snap->degraded_since;
  first_incident_ = snap->first_incident;
  inner_->restore(snap->inner.get());
}

}  // namespace pulse::fault
