#pragma once
// GuardedPolicy: a fault barrier around any KeepAlivePolicy.
//
// A policy that throws (MILP solver failure, predictor divergence fenced by
// predict::ensure_finite, a plain bug) would otherwise abort the whole
// multi-day run. The guard catches every exception at the policy boundary,
// counts it as an incident, and degrades to the provider's safe fixed
// keep-alive behaviour (highest-quality variant, 10-minute window) from
// that point on — the run completes with honest metrics instead of
// crashing or propagating a garbage schedule.

#include <memory>
#include <string>

#include "sim/policy.hpp"
#include "trace/analysis.hpp"

namespace pulse::fault {

class GuardedPolicy : public sim::KeepAlivePolicy {
 public:
  struct Config {
    /// Window the fallback schedules after each invocation, minutes.
    trace::Minute fallback_window = trace::kKeepAliveWindow;
  };

  explicit GuardedPolicy(std::unique_ptr<sim::KeepAlivePolicy> inner);  // default Config
  GuardedPolicy(std::unique_ptr<sim::KeepAlivePolicy> inner, Config config);

  [[nodiscard]] std::string name() const override;

  void initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                  sim::KeepAliveSchedule& schedule) override;

  void on_invocation(trace::FunctionId f, trace::Minute t,
                     sim::KeepAliveSchedule& schedule) override;

  void end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                     const sim::MemoryHistory& history) override;

  [[nodiscard]] std::size_t cold_start_variant(trace::FunctionId f, trace::Minute t,
                                               const sim::Deployment& deployment) const override;

  [[nodiscard]] std::uint64_t downgrade_count() const override;
  [[nodiscard]] std::uint64_t incident_count() const override { return incidents_; }

  /// Snapshots the guard's incident state together with the inner policy's
  /// snapshot, so a restored replay re-trips (or stays healthy) exactly as
  /// the original execution did.
  [[nodiscard]] std::unique_ptr<sim::PolicyCheckpoint> checkpoint() const override;
  void restore(const sim::PolicyCheckpoint* snapshot) override;

  /// Forwards the observer to the inner policy as well, so the wrapped
  /// policy's events and phase timings keep flowing while the guard also
  /// reports its own incidents.
  void attach_observer(const obs::Observer* observer) override;

  /// true once the guard has tripped and the fallback is driving.
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  /// Minute of the first incident; -1 while healthy.
  [[nodiscard]] trace::Minute degraded_since() const noexcept { return degraded_since_; }
  /// Description of the first caught incident ("" while healthy).
  [[nodiscard]] const std::string& first_incident() const noexcept { return first_incident_; }

 private:
  void record_incident(trace::Minute t, const char* what) const;

  std::unique_ptr<sim::KeepAlivePolicy> inner_;
  Config config_;
  // cold_start_variant() is const on the interface but must still be able
  // to trip the guard, hence mutable incident state.
  mutable std::uint64_t incidents_ = 0;
  mutable bool degraded_ = false;
  mutable trace::Minute degraded_since_ = -1;
  mutable std::string first_incident_;
  mutable obs::CounterHandle incident_counter_;  // guard.incidents
};

}  // namespace pulse::fault
