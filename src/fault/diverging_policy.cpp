#include "fault/diverging_policy.hpp"

#include <array>
#include <limits>
#include <stdexcept>

#include "predict/arima.hpp"
#include "predict/divergence.hpp"

namespace pulse::fault {

DivergingPolicy::DivergingPolicy(std::unique_ptr<sim::KeepAlivePolicy> inner)
    : DivergingPolicy(std::move(inner), Config{}) {}

DivergingPolicy::DivergingPolicy(std::unique_ptr<sim::KeepAlivePolicy> inner, Config config)
    : inner_(std::move(inner)), config_(config) {
  if (!inner_) throw std::invalid_argument("DivergingPolicy: inner policy is null");
}

std::string DivergingPolicy::name() const { return "Diverging(" + inner_->name() + ")"; }

void DivergingPolicy::initialize(const sim::Deployment& deployment, const trace::Trace& trace,
                                 sim::KeepAliveSchedule& schedule) {
  inner_->initialize(deployment, trace, schedule);
}

void DivergingPolicy::on_invocation(trace::FunctionId f, trace::Minute t,
                                    sim::KeepAliveSchedule& schedule) {
  if (t >= config_.diverge_at) {
    // The real divergence path: an AR fit on a NaN-poisoned idle-time
    // series. fit() rejects it, the fallback mean is NaN, and the forecast
    // propagates it — ensure_finite() is what stands between this and a
    // garbage keep-alive schedule.
    const std::array<double, 6> poisoned = {
        3.0, 5.0, std::numeric_limits<double>::quiet_NaN(), 4.0, 6.0, 2.0};
    predict::ArModel model(2);
    model.fit(poisoned);
    predict::ensure_finite(model.forecast(4), "diverging/ar");
  }
  inner_->on_invocation(f, t, schedule);
}

void DivergingPolicy::end_of_minute(trace::Minute t, sim::KeepAliveSchedule& schedule,
                                    const sim::MemoryHistory& history) {
  inner_->end_of_minute(t, schedule, history);
}

std::size_t DivergingPolicy::cold_start_variant(trace::FunctionId f, trace::Minute t,
                                                const sim::Deployment& deployment) const {
  return inner_->cold_start_variant(f, t, deployment);
}

std::uint64_t DivergingPolicy::downgrade_count() const { return inner_->downgrade_count(); }

}  // namespace pulse::fault
