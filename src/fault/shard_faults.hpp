#pragma once
// Seeded, deterministic shard-level fault injection for the cluster engine.
//
// The container-level FaultInjector disrupts individual kept containers;
// this injector disrupts whole worker shards: a crash loses the shard's
// entire warm pool and in-memory engine state (recovered by checkpoint +
// deterministic replay, see ClusterEngine), and a stall marks the shard a
// straggler for one rebalance epoch (it still computes, but its pressure
// signals are stale, so the capacity market leaves it untouched).
//
// Decisions follow the FaultInjector discipline: pure functions of
// (seed, stream, coordinates) via util::hash_uniform, so
//   - the same seed always produces the same shard-fault pattern, bitwise
//     reproducible for any thread count or barrier cadence,
//   - zero rates are observationally identical to no injector at all, and
//   - the crash and stall streams are independent of each other and of
//     every container-level fault stream.

#include <cstdint>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace pulse::fault {

struct ShardFaultConfig {
  std::uint64_t seed = 0x5a4dfa17;

  /// Probability that a live shard crashes in any given minute. A crash
  /// destroys the shard's warm pool and in-memory state; the cluster engine
  /// detects it at the next rebalance barrier, restores the last epoch
  /// checkpoint, and replays up to the crash minute.
  double crash_rate = 0.0;

  /// Rebalance epochs a crashed shard stays down after the barrier that
  /// detected the crash (>= 1). The shard is restored at the barrier ending
  /// the last down epoch; every arrival routed to it meanwhile fails.
  std::size_t recovery_epochs = 1;

  /// Probability that a live shard spends a whole rebalance epoch stalled
  /// (a straggler: it keeps simulating, but the capacity market skips it
  /// for the epoch because its signals are stale).
  double stall_rate = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return crash_rate > 0.0 || stall_rate > 0.0;
  }

  [[nodiscard]] bool valid() const noexcept {
    return crash_rate >= 0.0 && crash_rate <= 1.0 && stall_rate >= 0.0 &&
           stall_rate <= 1.0 && recovery_epochs >= 1;
  }
};

class ShardFaultInjector {
 public:
  ShardFaultInjector() = default;
  explicit ShardFaultInjector(ShardFaultConfig config) noexcept : config_(config) {}

  [[nodiscard]] const ShardFaultConfig& config() const noexcept { return config_; }

  /// Does shard `shard` crash during minute t?
  [[nodiscard]] bool shard_crashes(std::size_t shard, trace::Minute t) const noexcept {
    if (config_.crash_rate <= 0.0) return false;
    return util::hash_uniform(config_.seed, kCrashStream,
                              static_cast<std::uint64_t>(shard),
                              static_cast<std::uint64_t>(t)) < config_.crash_rate;
  }

  /// First minute in [begin, end) at which `shard` crashes; -1 when it
  /// survives the whole span. This is what the barrier detection scans.
  [[nodiscard]] trace::Minute first_crash_in(std::size_t shard, trace::Minute begin,
                                             trace::Minute end) const noexcept {
    if (config_.crash_rate <= 0.0) return -1;
    for (trace::Minute t = begin; t < end; ++t) {
      if (shard_crashes(shard, t)) return t;
    }
    return -1;
  }

  /// Is shard `shard` stalled for the whole rebalance epoch `epoch`
  /// (0-based epoch ordinal)?
  [[nodiscard]] bool shard_stalls(std::size_t shard, std::uint64_t epoch) const noexcept {
    if (config_.stall_rate <= 0.0) return false;
    return util::hash_uniform(config_.seed, kStallStream,
                              static_cast<std::uint64_t>(shard), epoch) <
           config_.stall_rate;
  }

 private:
  // Disjoint from every container-level FaultInjector stream tag and from
  // the engine's hashed-RNG stream tags.
  static constexpr std::uint64_t kCrashStream = 0x5a4d'c4a5;
  static constexpr std::uint64_t kStallStream = 0x5a4d'57a1;

  ShardFaultConfig config_{};
};

}  // namespace pulse::fault
