#pragma once
// Seeded, deterministic fault injection for the simulation engine.
//
// The paper's replay is idealized: containers never crash, cold starts
// never fail, invocations never time out. Real platforms see all three
// (plus memory pressure), and a keep-alive policy's value depends on how it
// degrades under them. The FaultInjector models those disruptions as pure
// functions of (seed, event coordinates): every decision is derived by
// hashing the coordinates of the event it concerns, so
//   - the same seed always produces the same fault pattern (bitwise
//     reproducible runs, regardless of thread count or iteration order),
//   - a zero-rate injector is observationally identical to no injector
//     (it consumes no shared RNG state), and
//   - fault streams are independent: raising the crash rate does not shift
//     the cold-start failure pattern.

#include <cstdint>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace pulse::fault {

struct FaultConfig {
  std::uint64_t seed = 0x5eedf417;

  /// Probability that a kept-alive container crashes in any given minute
  /// (checked once per kept container per minute; a crash evicts the
  /// container's remaining contiguous keep-alive stretch).
  double crash_rate = 0.0;

  /// Probability that one cold-start attempt fails. Failed attempts are
  /// retried with exponential-backoff latency penalties; after
  /// max_cold_start_retries failed retries the minute's invocations fail.
  double cold_start_failure_rate = 0.0;
  std::uint32_t max_cold_start_retries = 3;
  /// Latency penalty of the first retry, seconds; attempt k costs
  /// retry_backoff_base_s * 2^(k-1) on top of the eventual cold start.
  double retry_backoff_base_s = 0.5;

  /// Invocation SLO as a multiple of the variant's expected (warm or cold)
  /// service time; a sampled service time beyond it counts as a timeout and
  /// the invocation is abandoned at the deadline. 0 disables SLO tracking.
  double slo_multiplier = 0.0;

  /// Probability that any given minute is a memory-pressure spike, during
  /// which keep-alive capacity is capped at memory_pressure_capacity_mb
  /// (tightening any configured engine capacity). Both must be nonzero for
  /// pressure to fire.
  double memory_pressure_rate = 0.0;
  double memory_pressure_capacity_mb = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return crash_rate > 0.0 || cold_start_failure_rate > 0.0 || slo_multiplier > 0.0 ||
           (memory_pressure_rate > 0.0 && memory_pressure_capacity_mb > 0.0);
  }
};

/// Outcome of the cold-start retry loop for one (function, minute).
struct ColdStartOutcome {
  bool succeeded = true;
  std::uint32_t retries = 0;     // failed attempts before success or abandonment
  double retry_penalty_s = 0.0;  // summed exponential-backoff latency
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig config) noexcept : config_(config) {}

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// Does the container kept alive for f crash during minute t?
  [[nodiscard]] bool container_crashes(trace::FunctionId f, trace::Minute t) const noexcept {
    if (config_.crash_rate <= 0.0) return false;
    return uniform(kCrashStream, static_cast<std::uint64_t>(f),
                   static_cast<std::uint64_t>(t)) < config_.crash_rate;
  }

  /// Runs the bounded retry loop for a cold start of f at minute t.
  [[nodiscard]] ColdStartOutcome cold_start(trace::FunctionId f,
                                            trace::Minute t) const noexcept {
    ColdStartOutcome out;
    if (config_.cold_start_failure_rate <= 0.0) return out;
    const std::uint32_t attempts = config_.max_cold_start_retries + 1;
    for (std::uint32_t a = 0; a < attempts; ++a) {
      const double u =
          uniform(kColdStartStream, static_cast<std::uint64_t>(f),
                  static_cast<std::uint64_t>(t) * attempts + a);
      if (u >= config_.cold_start_failure_rate) return out;  // attempt succeeded
      if (a + 1 < attempts) {
        // A retry follows: count it and pay the backoff wait before it.
        ++out.retries;
        out.retry_penalty_s +=
            config_.retry_backoff_base_s * static_cast<double>(std::uint64_t{1} << a);
      }
    }
    out.succeeded = false;
    return out;
  }

  /// SLO deadline for an invocation with the given expected service time;
  /// 0 when SLO tracking is disabled.
  [[nodiscard]] double timeout_slo_s(double expected_service_s) const noexcept {
    return config_.slo_multiplier > 0.0 ? config_.slo_multiplier * expected_service_s : 0.0;
  }

  /// Is minute t under a memory-pressure spike?
  [[nodiscard]] bool under_memory_pressure(trace::Minute t) const noexcept {
    if (config_.memory_pressure_rate <= 0.0 || config_.memory_pressure_capacity_mb <= 0.0) {
      return false;
    }
    return uniform(kPressureStream, static_cast<std::uint64_t>(t), 0) <
           config_.memory_pressure_rate;
  }

  /// Keep-alive capacity in effect at minute t given the engine's configured
  /// capacity (0 = unlimited): pressure spikes tighten it to the spike cap.
  [[nodiscard]] double effective_capacity_mb(double configured_mb,
                                             trace::Minute t) const noexcept {
    if (!under_memory_pressure(t)) return configured_mb;
    if (configured_mb <= 0.0) return config_.memory_pressure_capacity_mb;
    return configured_mb < config_.memory_pressure_capacity_mb
               ? configured_mb
               : config_.memory_pressure_capacity_mb;
  }

 private:
  static constexpr std::uint64_t kCrashStream = 0xc7a5'11ed;
  static constexpr std::uint64_t kColdStartStream = 0xc01d'57a7;
  static constexpr std::uint64_t kPressureStream = 0x9e55'043e;

  /// Uniform [0, 1) derived purely from (seed, stream, a, b). Delegates to
  /// the shared util::hash_uniform chain — bit-identical to the historical
  /// in-class implementation, so fault fixtures never move.
  [[nodiscard]] double uniform(std::uint64_t stream, std::uint64_t a,
                               std::uint64_t b) const noexcept {
    return util::hash_uniform(config_.seed, stream, a, b);
  }

  FaultConfig config_{};
};

}  // namespace pulse::fault
