#pragma once
// Model variant characterization records.
//
// The paper characterizes each ML model variant once on AWS Lambda (warm and
// cold service times over 1000 inputs, keep-alive cost, accuracy) and then
// drives its entire simulation from those tuples. This module is the C++
// equivalent of that characterization table. Variants within a family are
// ordered by quality: index 0 is the lowest-accuracy (cheapest) variant, the
// last index is the highest-accuracy (most expensive) one — the ordering the
// greedy selector and the downgrade path both rely on.

#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pulse::models {

/// One quality variant of an ML model (e.g. "GPT-Small").
struct ModelVariant {
  std::string name;

  /// Execution time on a warm container, seconds (Table I "Service Time
  /// (with Warmup)").
  double warm_service_time_s = 0.0;

  /// Extra latency of a cold start (container creation + model load),
  /// seconds. Added to the warm time when an invocation cold-starts.
  double cold_start_time_s = 0.0;

  /// Inference accuracy in percent (Table I / the papers the authors cite).
  double accuracy_pct = 0.0;

  /// Keep-alive memory footprint of the container hosting this variant, MB.
  /// The paper reports footprints between 300 and 3500 MB.
  double memory_mb = 0.0;

  /// Accuracy as a fraction in [0, 1] — the unit Algorithm 2 uses.
  [[nodiscard]] double accuracy_fraction() const noexcept { return accuracy_pct / 100.0; }

  /// Cold-start service time (cold penalty + execution).
  [[nodiscard]] double cold_service_time_s() const noexcept {
    return warm_service_time_s + cold_start_time_s;
  }
};

/// A family of quality variants for one task (e.g. GPT on wikitext).
class ModelFamily {
 public:
  ModelFamily() = default;

  /// Variants must be non-empty and sorted ascending by accuracy; throws
  /// std::invalid_argument otherwise. The sort invariant is what makes
  /// "downgrade by one variant" well-defined.
  ModelFamily(std::string name, std::string task, std::string dataset,
              std::vector<ModelVariant> variants);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& task() const noexcept { return task_; }
  [[nodiscard]] const std::string& dataset() const noexcept { return dataset_; }

  [[nodiscard]] std::size_t variant_count() const noexcept { return variants_.size(); }
  [[nodiscard]] std::span<const ModelVariant> variants() const noexcept { return variants_; }

  [[nodiscard]] const ModelVariant& variant(std::size_t index) const {
    if (index >= variants_.size()) {
      throw std::out_of_range("ModelFamily::variant: index out of range");
    }
    return variants_[index];
  }

  [[nodiscard]] const ModelVariant& lowest() const { return variant(0); }
  [[nodiscard]] const ModelVariant& highest() const { return variant(variants_.size() - 1); }
  [[nodiscard]] std::size_t highest_index() const noexcept { return variants_.size() - 1; }

  /// Index of a variant by name; nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> find_variant(std::string_view name) const noexcept;

  /// Accuracy improvement Ai of keeping `index` alive instead of the
  /// next-lower variant (Algorithm 2): accuracy delta to index-1, or the
  /// variant's own accuracy fraction when it is already the lowest.
  [[nodiscard]] double accuracy_improvement(std::size_t index) const;

 private:
  std::string name_;
  std::string task_;
  std::string dataset_;
  std::vector<ModelVariant> variants_;
};

}  // namespace pulse::models
