#include "models/zoo.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/csv.hpp"

namespace pulse::models {

namespace {

/// Memory implied by a Table I keep-alive cost (cents/hour) at the paper's
/// implied rate. Example: GPT-Large 41.71 cents/h -> ~3505 MB, matching the
/// paper's statement that models occupy 300-3500 MB.
constexpr double kCentsPerMbHour = 0.0119;

double memory_from_cost(double cents_per_hour) noexcept {
  return cents_per_hour / kCentsPerMbHour;
}

ModelVariant make(std::string name, double warm_s, double accuracy_pct, double memory_mb) {
  ModelVariant v;
  v.name = std::move(name);
  v.warm_service_time_s = warm_s;
  v.cold_start_time_s = synthesized_cold_start_s(memory_mb);
  v.accuracy_pct = accuracy_pct;
  v.memory_mb = memory_mb;
  return v;
}

}  // namespace

double synthesized_cold_start_s(double memory_mb) noexcept {
  return 2.0 + memory_mb / 250.0;
}

const ModelFamily& ModelZoo::family_by_name(std::string_view name) const {
  for (const auto& f : families_) {
    if (f.name() == name) return f;
  }
  throw std::invalid_argument("ModelZoo: no family named '" + std::string(name) + "'");
}

bool ModelZoo::has_family(std::string_view name) const noexcept {
  return std::any_of(families_.begin(), families_.end(),
                     [&](const ModelFamily& f) { return f.name() == name; });
}

std::size_t ModelZoo::max_variant_count() const noexcept {
  std::size_t n = 0;
  for (const auto& f : families_) n = std::max(n, f.variant_count());
  return n;
}

ModelZoo ModelZoo::builtin() {
  std::vector<ModelFamily> families;

  // BERT (sentiment analysis, sst2) — Table I rows BERT-Small / BERT-Large.
  families.emplace_back(
      "BERT", "sentiment analysis", "sst2",
      std::vector<ModelVariant>{
          make("BERT-base", 1.09, 79.60, memory_from_cost(4.392)),
          make("BERT-large", 2.21, 82.10, memory_from_cost(6.12)),
      });

  // YOLO (object detection, COCO) — accuracies are the YOLOv5 mAP@0.5
  // figures (s=56.8 is quoted in the paper's utility-value discussion);
  // service times and footprints synthesized proportionally to model size.
  families.emplace_back(
      "YOLO", "object detection", "COCO",
      std::vector<ModelVariant>{
          make("YOLO-s", 0.38, 56.80, 350.0),
          make("YOLO-l", 0.92, 67.30, 920.0),
          make("YOLO-x", 1.34, 68.90, 1380.0),
      });

  // GPT (text generation, wikitext) — Table I rows.
  families.emplace_back(
      "GPT", "text generation", "wikitext",
      std::vector<ModelVariant>{
          make("GPT-base", 12.90, 87.65, memory_from_cost(11.70)),
          make("GPT-medium", 22.50, 92.35, memory_from_cost(22.57)),
          make("GPT-large", 23.66, 93.45, memory_from_cost(41.71)),
      });

  // ResNet (image classification, CIFAR-10) — accuracies from He et al.
  // (CIFAR-10 error rates); times/footprints synthesized.
  families.emplace_back(
      "ResNet", "image classification", "CIFAR-10",
      std::vector<ModelVariant>{
          make("ResNet-50", 0.88, 93.03, 310.0),
          make("ResNet-101", 1.24, 93.57, 490.0),
          make("ResNet-152", 1.61, 94.29, 660.0),
      });

  // DenseNet (image classification, CIFAR-10) — Table I rows.
  families.emplace_back(
      "DenseNet", "image classification", "CIFAR-10",
      std::vector<ModelVariant>{
          make("DenseNet-121", 1.09, 74.98, memory_from_cost(3.46)),
          make("DenseNet-169", 1.38, 76.20, memory_from_cost(3.53)),
          make("DenseNet-201", 1.65, 77.42, memory_from_cost(4.07)),
      });

  return ModelZoo(std::move(families));
}

void ModelZoo::save_csv(const std::filesystem::path& path) const {
  util::CsvTable table(
      {"family", "task", "dataset", "variant", "warm_s", "cold_s", "accuracy_pct", "memory_mb"});
  for (const auto& f : families_) {
    for (const auto& v : f.variants()) {
      table.add_row({f.name(), f.task(), f.dataset(), v.name,
                     std::to_string(v.warm_service_time_s), std::to_string(v.cold_start_time_s),
                     std::to_string(v.accuracy_pct), std::to_string(v.memory_mb)});
    }
  }
  table.write_file(path);
}

ModelZoo ModelZoo::load_csv(const std::filesystem::path& path) {
  const util::CsvTable table = util::CsvTable::read_file(path);
  const int c_family = table.column_index("family");
  const int c_task = table.column_index("task");
  const int c_dataset = table.column_index("dataset");
  const int c_variant = table.column_index("variant");
  const int c_warm = table.column_index("warm_s");
  const int c_cold = table.column_index("cold_s");
  const int c_acc = table.column_index("accuracy_pct");
  const int c_mem = table.column_index("memory_mb");
  if (c_family < 0 || c_task < 0 || c_dataset < 0 || c_variant < 0 || c_warm < 0 ||
      c_cold < 0 || c_acc < 0 || c_mem < 0) {
    throw std::runtime_error("ModelZoo CSV missing required columns: " + path.string());
  }

  ModelZoo zoo;
  std::string cur_family;
  std::string cur_task;
  std::string cur_dataset;
  std::vector<ModelVariant> cur_variants;

  auto flush = [&] {
    if (!cur_variants.empty()) {
      zoo.add_family(ModelFamily(cur_family, cur_task, cur_dataset, std::move(cur_variants)));
      cur_variants.clear();
    }
  };

  for (const auto& row : table.rows()) {
    const std::string& family = row.at(static_cast<std::size_t>(c_family));
    if (family != cur_family) {
      flush();
      cur_family = family;
      cur_task = row.at(static_cast<std::size_t>(c_task));
      cur_dataset = row.at(static_cast<std::size_t>(c_dataset));
    }
    ModelVariant v;
    v.name = row.at(static_cast<std::size_t>(c_variant));
    v.warm_service_time_s = std::stod(row.at(static_cast<std::size_t>(c_warm)));
    v.cold_start_time_s = std::stod(row.at(static_cast<std::size_t>(c_cold)));
    v.accuracy_pct = std::stod(row.at(static_cast<std::size_t>(c_acc)));
    v.memory_mb = std::stod(row.at(static_cast<std::size_t>(c_mem)));
    cur_variants.push_back(std::move(v));
  }
  flush();
  return zoo;
}

}  // namespace pulse::models
