#pragma once
// The built-in model zoo: every family/variant of the paper's Table IV with
// the characterization numbers of Table I, extended where the paper omits a
// number (see builtin() for the synthesis rules). Also provides CSV
// persistence so users can characterize their own models and feed them in.

#include <cstddef>
#include <filesystem>
#include <span>
#include <string_view>
#include <vector>

#include "models/model.hpp"

namespace pulse::models {

class ModelZoo {
 public:
  ModelZoo() = default;
  explicit ModelZoo(std::vector<ModelFamily> families) : families_(std::move(families)) {}

  [[nodiscard]] std::size_t family_count() const noexcept { return families_.size(); }
  [[nodiscard]] std::span<const ModelFamily> families() const noexcept { return families_; }

  [[nodiscard]] const ModelFamily& family(std::size_t index) const {
    if (index >= families_.size()) throw std::out_of_range("ModelZoo::family");
    return families_[index];
  }

  /// Family lookup by name; throws std::invalid_argument when absent.
  [[nodiscard]] const ModelFamily& family_by_name(std::string_view name) const;
  [[nodiscard]] bool has_family(std::string_view name) const noexcept;

  void add_family(ModelFamily family) { families_.push_back(std::move(family)); }

  /// Largest variant count across families (the "N" in the paper's
  /// probability-threshold formulas is per-family, but benches report this).
  [[nodiscard]] std::size_t max_variant_count() const noexcept;

  /// The paper's zoo: BERT(2), YOLO(3), GPT(3), ResNet(3), DenseNet(3).
  ///
  /// Numbers directly from the paper (Table I): GPT service times /
  /// accuracies, BERT accuracies, DenseNet service times / accuracies, and
  /// keep-alive cost rates from which memory footprints are derived at the
  /// paper's implied ~0.0119 cents/MB/hour. Synthesized (documented in
  /// DESIGN.md): YOLO accuracies use the YOLOv5 COCO mAP@0.5 figures the
  /// paper alludes to (s=56.8), ResNet CIFAR-10 accuracies use the original
  /// ResNet paper's figures, cold-start times scale affinely with memory
  /// (2 s container creation + model-load proportional to footprint).
  [[nodiscard]] static ModelZoo builtin();

  /// CSV round-trip. Columns: family,task,dataset,variant,warm_s,cold_s,
  /// accuracy_pct,memory_mb. Rows of one family must be contiguous and
  /// sorted ascending by accuracy.
  void save_csv(const std::filesystem::path& path) const;
  [[nodiscard]] static ModelZoo load_csv(const std::filesystem::path& path);

 private:
  std::vector<ModelFamily> families_;
};

/// Cold-start synthesis rule shared by builtin() and the tests:
/// 2 s container creation + 1 s per 250 MB of model footprint.
[[nodiscard]] double synthesized_cold_start_s(double memory_mb) noexcept;

}  // namespace pulse::models
