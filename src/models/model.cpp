#include "models/model.hpp"

namespace pulse::models {

ModelFamily::ModelFamily(std::string name, std::string task, std::string dataset,
                         std::vector<ModelVariant> variants)
    : name_(std::move(name)),
      task_(std::move(task)),
      dataset_(std::move(dataset)),
      variants_(std::move(variants)) {
  if (variants_.empty()) {
    throw std::invalid_argument("ModelFamily '" + name_ + "': needs at least one variant");
  }
  for (std::size_t i = 1; i < variants_.size(); ++i) {
    if (variants_[i].accuracy_pct < variants_[i - 1].accuracy_pct) {
      throw std::invalid_argument("ModelFamily '" + name_ +
                                  "': variants must be sorted ascending by accuracy");
    }
  }
  for (const auto& v : variants_) {
    if (v.warm_service_time_s < 0 || v.cold_start_time_s < 0 || v.memory_mb < 0 ||
        v.accuracy_pct < 0 || v.accuracy_pct > 100) {
      throw std::invalid_argument("ModelFamily '" + name_ + "': variant '" + v.name +
                                  "' has out-of-range characterization values");
    }
  }
}

std::optional<std::size_t> ModelFamily::find_variant(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < variants_.size(); ++i) {
    if (variants_[i].name == name) return i;
  }
  return std::nullopt;
}

double ModelFamily::accuracy_improvement(std::size_t index) const {
  const ModelVariant& v = variant(index);
  if (index == 0) {
    // Lowest variant: "the accuracy improvement is equivalent to the
    // accuracy of this lowest quality variant in decimal form" (paper §III-B).
    return v.accuracy_fraction();
  }
  return v.accuracy_fraction() - variants_[index - 1].accuracy_fraction();
}

}  // namespace pulse::models
