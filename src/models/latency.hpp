#pragma once
// Stochastic service-time model.
//
// The paper measures each variant's warm and cold service times over 1000
// inputs; per-invocation times vary with the input. We reproduce that with a
// lognormal jitter around the characterized means (lognormal matches the
// right-skewed latency distributions serverless measurement studies report).

#include "models/model.hpp"
#include "util/rng.hpp"

namespace pulse::models {

class LatencyModel {
 public:
  /// warm_cv / cold_cv: coefficient of variation of the jitter around the
  /// characterized warm execution time and cold-start penalty. Zero CV makes
  /// the model deterministic (used by unit tests and the ideal-cost bench).
  explicit LatencyModel(double warm_cv = 0.08, double cold_cv = 0.15) noexcept
      : warm_cv_(warm_cv), cold_cv_(cold_cv) {}

  /// Service time of one invocation, seconds. Cold invocations pay the
  /// cold-start penalty on top of execution.
  [[nodiscard]] double sample_service_time(const ModelVariant& variant, bool cold,
                                           util::Pcg32& rng) const {
    double t = util::lognormal_mean_cv(rng, variant.warm_service_time_s, warm_cv_);
    if (cold) t += util::lognormal_mean_cv(rng, variant.cold_start_time_s, cold_cv_);
    return t;
  }

  /// Expected (mean) service time — what the deterministic experiment paths
  /// and the ideal-cost computation use.
  [[nodiscard]] static double expected_service_time(const ModelVariant& variant,
                                                    bool cold) noexcept {
    return cold ? variant.cold_service_time_s() : variant.warm_service_time_s;
  }

  [[nodiscard]] double warm_cv() const noexcept { return warm_cv_; }
  [[nodiscard]] double cold_cv() const noexcept { return cold_cv_; }

 private:
  double warm_cv_;
  double cold_cv_;
};

}  // namespace pulse::models
