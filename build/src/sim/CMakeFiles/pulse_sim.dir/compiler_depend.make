# Empty compiler generated dependencies file for pulse_sim.
# This may be replaced when dependencies are built.
