file(REMOVE_RECURSE
  "libpulse_sim.a"
)
