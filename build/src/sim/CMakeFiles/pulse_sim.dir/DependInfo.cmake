
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/deployment.cpp" "src/sim/CMakeFiles/pulse_sim.dir/deployment.cpp.o" "gcc" "src/sim/CMakeFiles/pulse_sim.dir/deployment.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/pulse_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/pulse_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/ensemble.cpp" "src/sim/CMakeFiles/pulse_sim.dir/ensemble.cpp.o" "gcc" "src/sim/CMakeFiles/pulse_sim.dir/ensemble.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/pulse_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/pulse_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/sim/CMakeFiles/pulse_sim.dir/schedule.cpp.o" "gcc" "src/sim/CMakeFiles/pulse_sim.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pulse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pulse_models.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pulse_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
