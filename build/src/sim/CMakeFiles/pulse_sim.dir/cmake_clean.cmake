file(REMOVE_RECURSE
  "CMakeFiles/pulse_sim.dir/deployment.cpp.o"
  "CMakeFiles/pulse_sim.dir/deployment.cpp.o.d"
  "CMakeFiles/pulse_sim.dir/engine.cpp.o"
  "CMakeFiles/pulse_sim.dir/engine.cpp.o.d"
  "CMakeFiles/pulse_sim.dir/ensemble.cpp.o"
  "CMakeFiles/pulse_sim.dir/ensemble.cpp.o.d"
  "CMakeFiles/pulse_sim.dir/metrics.cpp.o"
  "CMakeFiles/pulse_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/pulse_sim.dir/schedule.cpp.o"
  "CMakeFiles/pulse_sim.dir/schedule.cpp.o.d"
  "libpulse_sim.a"
  "libpulse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
