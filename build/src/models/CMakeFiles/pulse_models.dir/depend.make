# Empty dependencies file for pulse_models.
# This may be replaced when dependencies are built.
