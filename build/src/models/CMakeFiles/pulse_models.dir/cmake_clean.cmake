file(REMOVE_RECURSE
  "CMakeFiles/pulse_models.dir/model.cpp.o"
  "CMakeFiles/pulse_models.dir/model.cpp.o.d"
  "CMakeFiles/pulse_models.dir/zoo.cpp.o"
  "CMakeFiles/pulse_models.dir/zoo.cpp.o.d"
  "libpulse_models.a"
  "libpulse_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
