file(REMOVE_RECURSE
  "libpulse_models.a"
)
