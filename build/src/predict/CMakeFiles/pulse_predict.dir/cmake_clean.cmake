file(REMOVE_RECURSE
  "CMakeFiles/pulse_predict.dir/arima.cpp.o"
  "CMakeFiles/pulse_predict.dir/arima.cpp.o.d"
  "CMakeFiles/pulse_predict.dir/evaluation.cpp.o"
  "CMakeFiles/pulse_predict.dir/evaluation.cpp.o.d"
  "CMakeFiles/pulse_predict.dir/fft.cpp.o"
  "CMakeFiles/pulse_predict.dir/fft.cpp.o.d"
  "CMakeFiles/pulse_predict.dir/hybrid_histogram.cpp.o"
  "CMakeFiles/pulse_predict.dir/hybrid_histogram.cpp.o.d"
  "libpulse_predict.a"
  "libpulse_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
