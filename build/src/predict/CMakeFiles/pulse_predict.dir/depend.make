# Empty dependencies file for pulse_predict.
# This may be replaced when dependencies are built.
