file(REMOVE_RECURSE
  "libpulse_predict.a"
)
