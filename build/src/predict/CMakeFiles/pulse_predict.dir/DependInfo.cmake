
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/arima.cpp" "src/predict/CMakeFiles/pulse_predict.dir/arima.cpp.o" "gcc" "src/predict/CMakeFiles/pulse_predict.dir/arima.cpp.o.d"
  "/root/repo/src/predict/evaluation.cpp" "src/predict/CMakeFiles/pulse_predict.dir/evaluation.cpp.o" "gcc" "src/predict/CMakeFiles/pulse_predict.dir/evaluation.cpp.o.d"
  "/root/repo/src/predict/fft.cpp" "src/predict/CMakeFiles/pulse_predict.dir/fft.cpp.o" "gcc" "src/predict/CMakeFiles/pulse_predict.dir/fft.cpp.o.d"
  "/root/repo/src/predict/hybrid_histogram.cpp" "src/predict/CMakeFiles/pulse_predict.dir/hybrid_histogram.cpp.o" "gcc" "src/predict/CMakeFiles/pulse_predict.dir/hybrid_histogram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pulse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pulse_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
