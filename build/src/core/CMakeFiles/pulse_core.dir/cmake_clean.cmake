file(REMOVE_RECURSE
  "CMakeFiles/pulse_core.dir/global_optimizer.cpp.o"
  "CMakeFiles/pulse_core.dir/global_optimizer.cpp.o.d"
  "CMakeFiles/pulse_core.dir/interarrival.cpp.o"
  "CMakeFiles/pulse_core.dir/interarrival.cpp.o.d"
  "CMakeFiles/pulse_core.dir/peak_detector.cpp.o"
  "CMakeFiles/pulse_core.dir/peak_detector.cpp.o.d"
  "CMakeFiles/pulse_core.dir/priority.cpp.o"
  "CMakeFiles/pulse_core.dir/priority.cpp.o.d"
  "CMakeFiles/pulse_core.dir/pulse_policy.cpp.o"
  "CMakeFiles/pulse_core.dir/pulse_policy.cpp.o.d"
  "CMakeFiles/pulse_core.dir/variant_selector.cpp.o"
  "CMakeFiles/pulse_core.dir/variant_selector.cpp.o.d"
  "libpulse_core.a"
  "libpulse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
