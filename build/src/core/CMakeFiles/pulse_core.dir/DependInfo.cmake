
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/global_optimizer.cpp" "src/core/CMakeFiles/pulse_core.dir/global_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/pulse_core.dir/global_optimizer.cpp.o.d"
  "/root/repo/src/core/interarrival.cpp" "src/core/CMakeFiles/pulse_core.dir/interarrival.cpp.o" "gcc" "src/core/CMakeFiles/pulse_core.dir/interarrival.cpp.o.d"
  "/root/repo/src/core/peak_detector.cpp" "src/core/CMakeFiles/pulse_core.dir/peak_detector.cpp.o" "gcc" "src/core/CMakeFiles/pulse_core.dir/peak_detector.cpp.o.d"
  "/root/repo/src/core/priority.cpp" "src/core/CMakeFiles/pulse_core.dir/priority.cpp.o" "gcc" "src/core/CMakeFiles/pulse_core.dir/priority.cpp.o.d"
  "/root/repo/src/core/pulse_policy.cpp" "src/core/CMakeFiles/pulse_core.dir/pulse_policy.cpp.o" "gcc" "src/core/CMakeFiles/pulse_core.dir/pulse_policy.cpp.o.d"
  "/root/repo/src/core/variant_selector.cpp" "src/core/CMakeFiles/pulse_core.dir/variant_selector.cpp.o" "gcc" "src/core/CMakeFiles/pulse_core.dir/variant_selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pulse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pulse_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pulse_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pulse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
