file(REMOVE_RECURSE
  "CMakeFiles/pulse_platform.dir/platform.cpp.o"
  "CMakeFiles/pulse_platform.dir/platform.cpp.o.d"
  "libpulse_platform.a"
  "libpulse_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
