file(REMOVE_RECURSE
  "libpulse_platform.a"
)
