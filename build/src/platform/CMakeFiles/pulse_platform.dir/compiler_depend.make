# Empty compiler generated dependencies file for pulse_platform.
# This may be replaced when dependencies are built.
