file(REMOVE_RECURSE
  "CMakeFiles/pulse_util.dir/cli.cpp.o"
  "CMakeFiles/pulse_util.dir/cli.cpp.o.d"
  "CMakeFiles/pulse_util.dir/csv.cpp.o"
  "CMakeFiles/pulse_util.dir/csv.cpp.o.d"
  "CMakeFiles/pulse_util.dir/linalg.cpp.o"
  "CMakeFiles/pulse_util.dir/linalg.cpp.o.d"
  "CMakeFiles/pulse_util.dir/logging.cpp.o"
  "CMakeFiles/pulse_util.dir/logging.cpp.o.d"
  "CMakeFiles/pulse_util.dir/stats.cpp.o"
  "CMakeFiles/pulse_util.dir/stats.cpp.o.d"
  "CMakeFiles/pulse_util.dir/table.cpp.o"
  "CMakeFiles/pulse_util.dir/table.cpp.o.d"
  "CMakeFiles/pulse_util.dir/thread_pool.cpp.o"
  "CMakeFiles/pulse_util.dir/thread_pool.cpp.o.d"
  "libpulse_util.a"
  "libpulse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
