file(REMOVE_RECURSE
  "libpulse_exp.a"
)
