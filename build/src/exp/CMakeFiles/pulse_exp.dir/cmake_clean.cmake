file(REMOVE_RECURSE
  "CMakeFiles/pulse_exp.dir/artifact.cpp.o"
  "CMakeFiles/pulse_exp.dir/artifact.cpp.o.d"
  "CMakeFiles/pulse_exp.dir/catalog.cpp.o"
  "CMakeFiles/pulse_exp.dir/catalog.cpp.o.d"
  "CMakeFiles/pulse_exp.dir/scenario.cpp.o"
  "CMakeFiles/pulse_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/pulse_exp.dir/summary.cpp.o"
  "CMakeFiles/pulse_exp.dir/summary.cpp.o.d"
  "libpulse_exp.a"
  "libpulse_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
