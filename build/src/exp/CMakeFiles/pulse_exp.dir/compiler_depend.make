# Empty compiler generated dependencies file for pulse_exp.
# This may be replaced when dependencies are built.
