# Empty compiler generated dependencies file for pulse_policies.
# This may be replaced when dependencies are built.
