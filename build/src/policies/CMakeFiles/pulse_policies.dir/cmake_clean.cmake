file(REMOVE_RECURSE
  "CMakeFiles/pulse_policies.dir/factory.cpp.o"
  "CMakeFiles/pulse_policies.dir/factory.cpp.o.d"
  "CMakeFiles/pulse_policies.dir/icebreaker.cpp.o"
  "CMakeFiles/pulse_policies.dir/icebreaker.cpp.o.d"
  "CMakeFiles/pulse_policies.dir/milp.cpp.o"
  "CMakeFiles/pulse_policies.dir/milp.cpp.o.d"
  "CMakeFiles/pulse_policies.dir/milp_policy.cpp.o"
  "CMakeFiles/pulse_policies.dir/milp_policy.cpp.o.d"
  "CMakeFiles/pulse_policies.dir/wild.cpp.o"
  "CMakeFiles/pulse_policies.dir/wild.cpp.o.d"
  "libpulse_policies.a"
  "libpulse_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
