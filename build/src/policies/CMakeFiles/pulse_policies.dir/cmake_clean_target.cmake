file(REMOVE_RECURSE
  "libpulse_policies.a"
)
