
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/pulse_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/pulse_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/azure_format.cpp" "src/trace/CMakeFiles/pulse_trace.dir/azure_format.cpp.o" "gcc" "src/trace/CMakeFiles/pulse_trace.dir/azure_format.cpp.o.d"
  "/root/repo/src/trace/classifier.cpp" "src/trace/CMakeFiles/pulse_trace.dir/classifier.cpp.o" "gcc" "src/trace/CMakeFiles/pulse_trace.dir/classifier.cpp.o.d"
  "/root/repo/src/trace/patterns.cpp" "src/trace/CMakeFiles/pulse_trace.dir/patterns.cpp.o" "gcc" "src/trace/CMakeFiles/pulse_trace.dir/patterns.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/pulse_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/pulse_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/workload.cpp" "src/trace/CMakeFiles/pulse_trace.dir/workload.cpp.o" "gcc" "src/trace/CMakeFiles/pulse_trace.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pulse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
