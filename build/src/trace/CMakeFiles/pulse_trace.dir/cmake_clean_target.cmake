file(REMOVE_RECURSE
  "libpulse_trace.a"
)
