# Empty dependencies file for pulse_trace.
# This may be replaced when dependencies are built.
