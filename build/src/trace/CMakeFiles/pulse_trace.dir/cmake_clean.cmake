file(REMOVE_RECURSE
  "CMakeFiles/pulse_trace.dir/analysis.cpp.o"
  "CMakeFiles/pulse_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/pulse_trace.dir/azure_format.cpp.o"
  "CMakeFiles/pulse_trace.dir/azure_format.cpp.o.d"
  "CMakeFiles/pulse_trace.dir/classifier.cpp.o"
  "CMakeFiles/pulse_trace.dir/classifier.cpp.o.d"
  "CMakeFiles/pulse_trace.dir/patterns.cpp.o"
  "CMakeFiles/pulse_trace.dir/patterns.cpp.o.d"
  "CMakeFiles/pulse_trace.dir/trace.cpp.o"
  "CMakeFiles/pulse_trace.dir/trace.cpp.o.d"
  "CMakeFiles/pulse_trace.dir/workload.cpp.o"
  "CMakeFiles/pulse_trace.dir/workload.cpp.o.d"
  "libpulse_trace.a"
  "libpulse_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
