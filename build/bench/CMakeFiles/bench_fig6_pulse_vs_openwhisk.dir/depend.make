# Empty dependencies file for bench_fig6_pulse_vs_openwhisk.
# This may be replaced when dependencies are built.
