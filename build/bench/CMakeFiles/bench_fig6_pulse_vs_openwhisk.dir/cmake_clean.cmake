file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pulse_vs_openwhisk.dir/bench_fig6_pulse_vs_openwhisk.cpp.o"
  "CMakeFiles/bench_fig6_pulse_vs_openwhisk.dir/bench_fig6_pulse_vs_openwhisk.cpp.o.d"
  "bench_fig6_pulse_vs_openwhisk"
  "bench_fig6_pulse_vs_openwhisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pulse_vs_openwhisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
