# Empty compiler generated dependencies file for bench_fig12_local_window.
# This may be replaced when dependencies are built.
