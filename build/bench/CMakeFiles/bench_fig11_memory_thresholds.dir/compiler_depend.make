# Empty compiler generated dependencies file for bench_fig11_memory_thresholds.
# This may be replaced when dependencies are built.
