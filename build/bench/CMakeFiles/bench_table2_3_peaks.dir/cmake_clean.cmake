file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_3_peaks.dir/bench_table2_3_peaks.cpp.o"
  "CMakeFiles/bench_table2_3_peaks.dir/bench_table2_3_peaks.cpp.o.d"
  "bench_table2_3_peaks"
  "bench_table2_3_peaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_3_peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
