# Empty compiler generated dependencies file for bench_table2_3_peaks.
# This may be replaced when dependencies are built.
