# Empty compiler generated dependencies file for bench_predictor_quality.
# This may be replaced when dependencies are built.
