file(REMOVE_RECURSE
  "CMakeFiles/bench_predictor_quality.dir/bench_predictor_quality.cpp.o"
  "CMakeFiles/bench_predictor_quality.dir/bench_predictor_quality.cpp.o.d"
  "bench_predictor_quality"
  "bench_predictor_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predictor_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
