file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_sensitivity.dir/bench_workload_sensitivity.cpp.o"
  "CMakeFiles/bench_workload_sensitivity.dir/bench_workload_sensitivity.cpp.o.d"
  "bench_workload_sensitivity"
  "bench_workload_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
