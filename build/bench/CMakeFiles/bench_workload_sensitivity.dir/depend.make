# Empty dependencies file for bench_workload_sensitivity.
# This may be replaced when dependencies are built.
