# Empty dependencies file for bench_fig8_integration.
# This may be replaced when dependencies are built.
