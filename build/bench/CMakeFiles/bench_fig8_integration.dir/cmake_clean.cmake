file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_integration.dir/bench_fig8_integration.cpp.o"
  "CMakeFiles/bench_fig8_integration.dir/bench_fig8_integration.cpp.o.d"
  "bench_fig8_integration"
  "bench_fig8_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
