file(REMOVE_RECURSE
  "CMakeFiles/custom_models.dir/custom_models.cpp.o"
  "CMakeFiles/custom_models.dir/custom_models.cpp.o.d"
  "custom_models"
  "custom_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
