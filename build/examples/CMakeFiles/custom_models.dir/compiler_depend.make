# Empty compiler generated dependencies file for custom_models.
# This may be replaced when dependencies are built.
