file(REMOVE_RECURSE
  "CMakeFiles/test_policies.dir/policies/factory_test.cpp.o"
  "CMakeFiles/test_policies.dir/policies/factory_test.cpp.o.d"
  "CMakeFiles/test_policies.dir/policies/fixed_keepalive_test.cpp.o"
  "CMakeFiles/test_policies.dir/policies/fixed_keepalive_test.cpp.o.d"
  "CMakeFiles/test_policies.dir/policies/icebreaker_test.cpp.o"
  "CMakeFiles/test_policies.dir/policies/icebreaker_test.cpp.o.d"
  "CMakeFiles/test_policies.dir/policies/ideal_test.cpp.o"
  "CMakeFiles/test_policies.dir/policies/ideal_test.cpp.o.d"
  "CMakeFiles/test_policies.dir/policies/milp_test.cpp.o"
  "CMakeFiles/test_policies.dir/policies/milp_test.cpp.o.d"
  "CMakeFiles/test_policies.dir/policies/oracle_test.cpp.o"
  "CMakeFiles/test_policies.dir/policies/oracle_test.cpp.o.d"
  "CMakeFiles/test_policies.dir/policies/random_mix_test.cpp.o"
  "CMakeFiles/test_policies.dir/policies/random_mix_test.cpp.o.d"
  "CMakeFiles/test_policies.dir/policies/wild_test.cpp.o"
  "CMakeFiles/test_policies.dir/policies/wild_test.cpp.o.d"
  "test_policies"
  "test_policies.pdb"
  "test_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
