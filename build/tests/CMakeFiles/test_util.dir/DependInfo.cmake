
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/test_util.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/test_util.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/histogram_fuzz_test.cpp" "tests/CMakeFiles/test_util.dir/util/histogram_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/histogram_fuzz_test.cpp.o.d"
  "/root/repo/tests/util/linalg_test.cpp" "tests/CMakeFiles/test_util.dir/util/linalg_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/linalg_test.cpp.o.d"
  "/root/repo/tests/util/logging_test.cpp" "tests/CMakeFiles/test_util.dir/util/logging_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/logging_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/pulse_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/pulse_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pulse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/pulse_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/pulse_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pulse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pulse_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pulse_models.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pulse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
