file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/analysis_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/analysis_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/azure_format_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/azure_format_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/classifier_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/classifier_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/patterns_sweep_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/patterns_sweep_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/patterns_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/patterns_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/trace_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/workload_peaks_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/workload_peaks_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/workload_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/workload_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
