file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/bernoulli_accuracy_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/bernoulli_accuracy_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/capacity_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/capacity_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/cost_model_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/cost_model_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/deployment_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/deployment_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/engine_edge_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/engine_edge_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/engine_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/engine_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/ensemble_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/ensemble_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/schedule_fuzz_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/schedule_fuzz_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/schedule_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/schedule_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
