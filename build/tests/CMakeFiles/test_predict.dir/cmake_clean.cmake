file(REMOVE_RECURSE
  "CMakeFiles/test_predict.dir/predict/arima_test.cpp.o"
  "CMakeFiles/test_predict.dir/predict/arima_test.cpp.o.d"
  "CMakeFiles/test_predict.dir/predict/evaluation_test.cpp.o"
  "CMakeFiles/test_predict.dir/predict/evaluation_test.cpp.o.d"
  "CMakeFiles/test_predict.dir/predict/fft_test.cpp.o"
  "CMakeFiles/test_predict.dir/predict/fft_test.cpp.o.d"
  "CMakeFiles/test_predict.dir/predict/hybrid_histogram_test.cpp.o"
  "CMakeFiles/test_predict.dir/predict/hybrid_histogram_test.cpp.o.d"
  "test_predict"
  "test_predict.pdb"
  "test_predict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
