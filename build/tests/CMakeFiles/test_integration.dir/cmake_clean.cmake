file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/artifact_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/artifact_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/catalog_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/catalog_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/properties_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/properties_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/summary_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/summary_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
