file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/adaptive_window_test.cpp.o"
  "CMakeFiles/test_core.dir/core/adaptive_window_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/global_optimizer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/global_optimizer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/interarrival_test.cpp.o"
  "CMakeFiles/test_core.dir/core/interarrival_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/peak_detector_test.cpp.o"
  "CMakeFiles/test_core.dir/core/peak_detector_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/priority_test.cpp.o"
  "CMakeFiles/test_core.dir/core/priority_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pulse_policy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pulse_policy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/utility_weights_test.cpp.o"
  "CMakeFiles/test_core.dir/core/utility_weights_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/variant_selector_test.cpp.o"
  "CMakeFiles/test_core.dir/core/variant_selector_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
